/**
 * @file
 * Tests for coldboot-lint: tokenizer edge cases, every rule's
 * positive and negative cases, suppression handling, per-directory
 * config, tree walking, and the JSON/SARIF emitters round-tripped
 * through the in-tree obs::json parser.
 *
 * All violation samples live inside raw string literals, so this
 * file itself stays lint-clean.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>

#include <unistd.h>

#include "lint/cache.hh"
#include "lint/callgraph.hh"
#include "lint/engine.hh"
#include "lint/lexer.hh"
#include "lint/parse.hh"
#include "lint/rules.hh"
#include "obs/json.hh"

namespace fs = std::filesystem;
using namespace coldboot;
using namespace coldboot::lint;

namespace
{

/** Findings for one in-memory source with no rules disabled. */
std::vector<Finding>
lintOf(const std::string &path, const std::string &src)
{
    return lintSource(path, src);
}

/** Count findings for a given rule. */
size_t
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    size_t n = 0;
    for (const auto &f : findings)
        n += f.rule == rule;
    return n;
}

} // anonymous namespace

// ---------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------

TEST(LintLexer, IdentifiersAndPositions)
{
    auto lexed = lex("foo bar\n  baz");
    ASSERT_EQ(lexed.tokens.size(), 3u);
    EXPECT_EQ(lexed.tokens[0].text, "foo");
    EXPECT_EQ(lexed.tokens[0].line, 1);
    EXPECT_EQ(lexed.tokens[0].col, 1);
    EXPECT_EQ(lexed.tokens[1].text, "bar");
    EXPECT_EQ(lexed.tokens[1].col, 5);
    EXPECT_EQ(lexed.tokens[2].text, "baz");
    EXPECT_EQ(lexed.tokens[2].line, 2);
    EXPECT_EQ(lexed.tokens[2].col, 3);
}

TEST(LintLexer, LineCommentsAreNotTokens)
{
    auto lexed = lex("a // memset(master_key)\nb");
    ASSERT_EQ(lexed.tokens.size(), 2u);
    EXPECT_EQ(lexed.tokens[0].text, "a");
    EXPECT_EQ(lexed.tokens[1].text, "b");
    ASSERT_EQ(lexed.comments.size(), 1u);
    EXPECT_EQ(lexed.comments[0].line, 1);
    EXPECT_NE(lexed.comments[0].text.find("memset"),
              std::string::npos);
}

TEST(LintLexer, BlockCommentsSpanLines)
{
    auto lexed = lex("a /* one\ntwo */ b");
    ASSERT_EQ(lexed.tokens.size(), 2u);
    EXPECT_EQ(lexed.tokens[1].text, "b");
    EXPECT_EQ(lexed.tokens[1].line, 2);
    ASSERT_EQ(lexed.comments.size(), 1u);
    EXPECT_EQ(lexed.comments[0].line, 1);
}

TEST(LintLexer, StringLiteralContentsNotTokenized)
{
    auto lexed = lex(R"lit(x = "memset(master_key, 0, 64)";)lit");
    for (const auto &t : lexed.tokens)
        EXPECT_NE(t.text, "memset");
    // Escaped quote stays inside the literal.
    auto esc = lex(R"lit(y = "a\"memset\"b"; z)lit");
    ASSERT_FALSE(esc.tokens.empty());
    EXPECT_EQ(esc.tokens.back().text, "z");
}

TEST(LintLexer, RawStringContentsNotTokenized)
{
    std::string src = "auto s = R\"lint(memset(master, 0, 4) "
                      "\"inner\" )x\" )lint\"; tail";
    auto lexed = lex(src);
    bool saw_memset = false, saw_tail = false;
    for (const auto &t : lexed.tokens) {
        saw_memset |= t.text == "memset";
        saw_tail |= t.text == "tail";
    }
    EXPECT_FALSE(saw_memset);
    EXPECT_TRUE(saw_tail);
}

TEST(LintLexer, CharLiteralsAndDigitSeparators)
{
    auto lexed = lex("char c = 'x'; int n = 1'000'000; a");
    EXPECT_EQ(lexed.tokens.back().text, "a");
    bool saw_number = false;
    for (const auto &t : lexed.tokens)
        if (t.kind == TokKind::Number)
            saw_number = t.text == "1'000'000";
    EXPECT_TRUE(saw_number);
}

TEST(LintLexer, PreprocessorDirectiveIsOneToken)
{
    auto lexed = lex("#include <sys/time.h>\nint x;");
    ASSERT_GE(lexed.tokens.size(), 1u);
    EXPECT_EQ(lexed.tokens[0].kind, TokKind::Preprocessor);
    // 'time' inside the include path must not be an identifier.
    for (size_t i = 1; i < lexed.tokens.size(); ++i)
        EXPECT_NE(lexed.tokens[i].text, "time");
}

TEST(LintLexer, PreprocessorContinuationJoined)
{
    auto lexed = lex("#define M(a) \\\n    (a + 1)\nint y;");
    ASSERT_GE(lexed.tokens.size(), 2u);
    EXPECT_EQ(lexed.tokens[0].kind, TokKind::Preprocessor);
    EXPECT_NE(lexed.tokens[0].text.find("(a + 1)"),
              std::string::npos);
    EXPECT_EQ(lexed.tokens[1].text, "int");
}

// ---------------------------------------------------------------
// secret-wipe.
// ---------------------------------------------------------------

TEST(LintRules, SecretWipePositive)
{
    auto f = lintOf("a.cc", R"(
void scrub(unsigned char *master_key) {
    std::memset(master_key, 0, 64);
})");
    ASSERT_EQ(countRule(f, "secret-wipe"), 1u);
    EXPECT_EQ(f[0].line, 3);

    auto g = lintOf("a.cc", "bzero(secret_buf, n);");
    EXPECT_EQ(countRule(g, "secret-wipe"), 1u);

    // The builtin spelling is just as elidable as the std one.
    auto h = lintOf("a.cc", "__builtin_memset(master_key, 0, 64);");
    EXPECT_EQ(countRule(h, "secret-wipe"), 1u);
}

TEST(LintRules, SecretWipeNegative)
{
    // Non-secret identifiers are fine to memset.
    auto f = lintOf("a.cc", "std::memset(buffer, 0, n);");
    EXPECT_EQ(countRule(f, "secret-wipe"), 0u);
    // Mentions in comments and strings are not calls.
    auto g = lintOf("a.cc",
                    "// std::memset(master, 0, 64)\n"
                    "const char *s = \"memset(master, 0, 64)\";");
    EXPECT_EQ(countRule(g, "secret-wipe"), 0u);
    // secureWipe itself is the fix, not a finding.
    auto h = lintOf("a.cc", "secureWipe(master_key, 64);");
    EXPECT_EQ(countRule(h, "secret-wipe"), 0u);
}

// ---------------------------------------------------------------
// banned-api.
// ---------------------------------------------------------------

TEST(LintRules, BannedApiPositive)
{
    auto f = lintOf("a.cc", R"(
int x = rand();
char b[8]; sprintf(b, "%d", x);
system("ls");
char *p = new char[32];
)");
    EXPECT_EQ(countRule(f, "banned-api"), 4u);
}

TEST(LintRules, BannedApiNegative)
{
    auto f = lintOf("a.cc", R"(
int random_value = myRandom();
auto widget = new Widget();
auto obj = new Thing(arg1, arg2);
int srandom = 3; (void)srandom;
snprintf(buf, sizeof(buf), "%d", 1);
)");
    EXPECT_EQ(countRule(f, "banned-api"), 0u);
}

// ---------------------------------------------------------------
// no-wallclock-in-sim.
// ---------------------------------------------------------------

TEST(LintRules, WallclockPositive)
{
    auto f = lintOf("a.cc", R"(
time_t t = time(nullptr);
auto n = std::chrono::system_clock::now();
std::random_device rd;
)");
    EXPECT_EQ(countRule(f, "no-wallclock-in-sim"), 3u);
}

TEST(LintRules, WallclockNegative)
{
    auto f = lintOf("a.cc", R"(
auto t0 = std::chrono::steady_clock::now();
engine.clock();
sim.time(5);
uint64_t sim_time = 7;
)");
    EXPECT_EQ(countRule(f, "no-wallclock-in-sim"), 0u);
}

// ---------------------------------------------------------------
// include-hygiene.
// ---------------------------------------------------------------

TEST(LintRules, HeaderGuardMissing)
{
    auto f = lintOf("a.hh", "int x;\n");
    EXPECT_EQ(countRule(f, "include-hygiene"), 1u);
    // Same content in a .cc is fine.
    auto g = lintOf("a.cc", "int x;\n");
    EXPECT_EQ(countRule(g, "include-hygiene"), 0u);
}

TEST(LintRules, HeaderGuardVariantsAccepted)
{
    auto pragma = lintOf("a.hh", "#pragma once\nint x;\n");
    EXPECT_EQ(countRule(pragma, "include-hygiene"), 0u);
    auto classic = lintOf("a.hh",
                          "#ifndef A_HH\n#define A_HH\nint x;\n"
                          "#endif\n");
    EXPECT_EQ(countRule(classic, "include-hygiene"), 0u);
    // Guard macro mismatch is not a guard.
    auto broken = lintOf("a.hh",
                         "#ifndef A_HH\n#define OTHER_HH\nint x;\n"
                         "#endif\n");
    EXPECT_EQ(countRule(broken, "include-hygiene"), 1u);
}

TEST(LintRules, UsingNamespaceInHeader)
{
    std::string guarded = "#pragma once\nusing namespace std;\n";
    auto f = lintOf("a.hh", guarded);
    EXPECT_EQ(countRule(f, "include-hygiene"), 1u);
    // In a .cc it is allowed (style handled elsewhere).
    auto g = lintOf("a.cc", "using namespace std;\n");
    EXPECT_EQ(countRule(g, "include-hygiene"), 0u);
    // `using x = y;` aliases are fine in headers.
    auto h = lintOf("a.hh", "#pragma once\nusing T = int;\n");
    EXPECT_EQ(countRule(h, "include-hygiene"), 0u);
}

// ---------------------------------------------------------------
// log-no-secrets.
// ---------------------------------------------------------------

TEST(LintRules, LogNoSecretsPositive)
{
    auto f = lintOf("a.cc",
                    "cb_inform(\"key=%s\", toHex(master_key));");
    EXPECT_EQ(countRule(f, "log-no-secrets"), 1u);
    auto g = lintOf("a.cc", "LOG_INFO(\"%p\", secret_ptr);");
    EXPECT_EQ(countRule(g, "log-no-secrets"), 1u);
}

TEST(LintRules, LogNoSecretsNegative)
{
    // Sizes and counts of key material are not key material.
    auto f = lintOf(
        "a.cc", "cb_inform(\"%zu keys\", mined_keys.size());");
    EXPECT_EQ(countRule(f, "log-no-secrets"), 0u);
    // Literals mentioning "key" are fine.
    auto g = lintOf("a.cc", "cb_inform(\"master key recovered\");");
    EXPECT_EQ(countRule(g, "log-no-secrets"), 0u);
    // Non-logging calls are out of scope for this rule.
    auto h = lintOf("a.cc", "store(master_key);");
    EXPECT_EQ(countRule(h, "log-no-secrets"), 0u);
}

TEST(LintRules, NoRawThreadPositive)
{
    auto f = lintOf("src/attack/scan.cc",
                    "std::thread worker(scanRange, lo, hi);");
    EXPECT_EQ(countRule(f, "no-raw-thread"), 1u);
    auto g = lintOf("tests/test_x.cc",
                    "std::vector<std::jthread> pool;");
    EXPECT_EQ(countRule(g, "no-raw-thread"), 1u);
    auto h = lintOf("bench/b.cc",
                    "pthread_create(&tid, nullptr, fn, arg);");
    EXPECT_EQ(countRule(h, "no-raw-thread"), 1u);
}

TEST(LintRules, NoRawThreadNegative)
{
    // src/exec/ owns the raw threads behind the ThreadPool.
    auto f = lintOf("src/exec/thread_pool.cc",
                    "std::vector<std::thread> threads;");
    EXPECT_EQ(countRule(f, "no-raw-thread"), 0u);
    // Scoped members are queries, not thread construction.
    auto g = lintOf("src/obs/trace.cc",
                    "std::thread::id id; unsigned n = "
                    "std::thread::hardware_concurrency();");
    EXPECT_EQ(countRule(g, "no-raw-thread"), 0u);
    // std::this_thread and plain identifiers named 'thread'.
    auto h = lintOf("src/a.cc",
                    "std::this_thread::yield(); int thread = 0;");
    EXPECT_EQ(countRule(h, "no-raw-thread"), 0u);
    // Suppressible like any other rule.
    auto s = lintOf(
        "tests/test_y.cc",
        "// coldboot-lint: allow(no-raw-thread) -- below the pool\n"
        "std::vector<std::thread> pool;");
    EXPECT_EQ(countRule(s, "no-raw-thread"), 0u);
}

TEST(LintRules, LooksSecret)
{
    EXPECT_TRUE(looksSecret("master_key"));
    EXPECT_TRUE(looksSecret("PassPhrase"));
    EXPECT_TRUE(looksSecret("the_secret"));
    EXPECT_FALSE(looksSecret("buffer"));
    EXPECT_FALSE(looksSecret("recovered"));
}

TEST(LintRules, LooksKeyMaterialDemotesMetadata)
{
    // The taint pass amplifies seeds across the call graph, so its
    // heuristic demotes identifiers *about* keys: sizes, offsets,
    // counts, stat-registry key strings.
    EXPECT_TRUE(looksKeyMaterial("master_key"));
    EXPECT_TRUE(looksKeyMaterial("data_key"));
    EXPECT_TRUE(looksKeyMaterial("mined_keys"));
    EXPECT_FALSE(looksKeyMaterial("key_size"));
    EXPECT_FALSE(looksKeyMaterial("key_len"));
    EXPECT_FALSE(looksKeyMaterial("keytable_addr"));
    EXPECT_FALSE(looksKeyMaterial("distinct_keys"));
    EXPECT_FALSE(looksKeyMaterial("key_match"));
    EXPECT_FALSE(looksKeyMaterial("key")); // stat-registry key
    EXPECT_FALSE(looksKeyMaterial("keys"));
    EXPECT_FALSE(looksKeyMaterial("buffer"));
}

// ---------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------

TEST(LintSuppression, SameLineAndLineAbove)
{
    std::string same =
        "std::memset(master_key, 0, 64); "
        "// coldboot-lint: allow(secret-wipe) -- test fixture\n";
    EXPECT_EQ(countRule(lintOf("a.cc", same), "secret-wipe"), 0u);

    std::string above =
        "// coldboot-lint: allow(secret-wipe) -- test fixture\n"
        "std::memset(master_key, 0, 64);\n";
    EXPECT_EQ(countRule(lintOf("a.cc", above), "secret-wipe"), 0u);
}

TEST(LintSuppression, WrongRuleDoesNotSuppress)
{
    std::string src =
        "// coldboot-lint: allow(banned-api) -- wrong rule\n"
        "std::memset(master_key, 0, 64);\n";
    EXPECT_EQ(countRule(lintOf("a.cc", src), "secret-wipe"), 1u);
}

TEST(LintSuppression, TooFarAwayDoesNotSuppress)
{
    std::string src =
        "// coldboot-lint: allow(secret-wipe) -- too far\n"
        "int x;\n"
        "std::memset(master_key, 0, 64);\n";
    EXPECT_EQ(countRule(lintOf("a.cc", src), "secret-wipe"), 1u);
}

TEST(LintSuppression, BlankLineBreaksAdjacency)
{
    // A standalone suppression covers exactly the next line; even a
    // blank line in between detaches it from the finding.
    std::string src =
        "// coldboot-lint: allow(secret-wipe) -- detached\n"
        "\n"
        "std::memset(master_key, 0, 64);\n";
    EXPECT_EQ(countRule(lintOf("a.cc", src), "secret-wipe"), 1u);
}

TEST(LintSuppression, MissingJustificationIsAFinding)
{
    std::string src =
        "// coldboot-lint: allow(secret-wipe)\n"
        "std::memset(master_key, 0, 64);\n";
    auto f = lintOf("a.cc", src);
    EXPECT_EQ(countRule(f, "bad-suppression"), 1u);
    // And the malformed suppression does not waive the finding.
    EXPECT_EQ(countRule(f, "secret-wipe"), 1u);
}

TEST(LintSuppression, UnknownRuleIsAFinding)
{
    std::string src =
        "// coldboot-lint: allow(no-such-rule) -- why\nint x;\n";
    EXPECT_EQ(countRule(lintOf("a.cc", src), "bad-suppression"), 1u);
}

TEST(LintSuppression, ProseMentionIsNotASuppression)
{
    std::string src =
        "// see the coldboot-lint: allow(secret-wipe) syntax\n"
        "int x;\n";
    EXPECT_EQ(countRule(lintOf("a.cc", src), "bad-suppression"), 0u);
}

// ---------------------------------------------------------------
// Rule catalog and disabling.
// ---------------------------------------------------------------

TEST(LintRules, CatalogKnowsEveryRule)
{
    EXPECT_GE(ruleCatalog().size(), 10u);
    EXPECT_TRUE(isKnownRule("secret-wipe"));
    EXPECT_TRUE(isKnownRule("banned-api"));
    EXPECT_TRUE(isKnownRule("no-wallclock-in-sim"));
    EXPECT_TRUE(isKnownRule("include-hygiene"));
    EXPECT_TRUE(isKnownRule("log-no-secrets"));
    EXPECT_TRUE(isKnownRule("bad-suppression"));
    EXPECT_TRUE(isKnownRule("secret-taint"));
    EXPECT_TRUE(isKnownRule("transitive-determinism"));
    EXPECT_TRUE(isKnownRule("wipe-coverage"));
    EXPECT_FALSE(isKnownRule("no-such-rule"));
}

TEST(LintRules, CatalogCarriesExplainMetadata)
{
    // --explain and the SARIF rule help render straight from the
    // catalog; every entry must be fully populated.
    for (const auto &info : ruleCatalog()) {
        EXPECT_TRUE(info.id && *info.id);
        EXPECT_TRUE(info.description && *info.description) << info.id;
        EXPECT_TRUE(info.rationale && *info.rationale) << info.id;
        EXPECT_TRUE(info.example_bad && *info.example_bad) << info.id;
        EXPECT_TRUE(info.example_fix && *info.example_fix) << info.id;
    }
}

TEST(LintRules, DisabledRuleProducesNothing)
{
    std::string src = "std::memset(master_key, 0, 64);";
    auto f = lintSource("a.cc", src, {"secret-wipe"});
    EXPECT_EQ(countRule(f, "secret-wipe"), 0u);
}

// ---------------------------------------------------------------
// Tree walking and per-directory config.
// ---------------------------------------------------------------

class LintTreeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per process: gtest_discover_tests runs each case
        // as its own ctest entry, and parallel ctest must not have
        // two cases clobbering one shared fixture directory.
        root = fs::temp_directory_path() /
               ("coldboot_lint_gtest_" + std::to_string(getpid()));
        fs::remove_all(root);
        fs::create_directories(root / "src");
    }

    void TearDown() override { fs::remove_all(root); }

    void
    write(const std::string &rel, const std::string &content)
    {
        fs::path p = root / rel;
        fs::create_directories(p.parent_path());
        std::ofstream out(p);
        out << content;
    }

    fs::path root;
};

TEST_F(LintTreeTest, FindsViolationsWithRelativePaths)
{
    write("src/bad.cc", "std::memset(master_key, 0, 64);\n");
    write("src/good.cc", "int x;\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error);
    EXPECT_EQ(result.files_scanned, 2u);
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/bad.cc");
    EXPECT_EQ(result.findings[0].rule, "secret-wipe");
    EXPECT_EQ(result.findings[0].line, 1);
}

TEST_F(LintTreeTest, PerDirectoryConfigDisables)
{
    write("src/.coldboot-lint", "# config\ndisable secret-wipe\n");
    write("src/bad.cc", "std::memset(master_key, 0, 64);\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error);
    EXPECT_TRUE(result.findings.empty());
}

TEST_F(LintTreeTest, ConfigFileSubstringScopesTheDisable)
{
    write("src/.coldboot-lint", "disable secret-wipe smoke_\n");
    write("src/smoke_a.cc", "std::memset(master_key, 0, 64);\n");
    write("src/real.cc", "std::memset(master_key, 0, 64);\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error);
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/real.cc");
}

TEST_F(LintTreeTest, ConfigAppliesToSubdirectories)
{
    write(".coldboot-lint", "disable secret-wipe\n");
    write("src/deep/bad.cc", "std::memset(master_key, 0, 64);\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error);
    EXPECT_TRUE(result.findings.empty());
}

TEST_F(LintTreeTest, BrokenConfigIsInternalError)
{
    write("src/.coldboot-lint", "disable no-such-rule\n");
    write("src/a.cc", "int x;\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    EXPECT_TRUE(result.internal_error);
    EXPECT_NE(result.error_message.find("unknown rule"),
              std::string::npos);
}

TEST_F(LintTreeTest, MissingPathIsInternalError)
{
    LintOptions options;
    options.root = root.string();
    options.paths = {"nope"};
    auto result = lintTree(options);
    EXPECT_TRUE(result.internal_error);
}

TEST_F(LintTreeTest, NonSourceFilesIgnored)
{
    write("src/notes.md", "std::memset(master_key, 0, 64);\n");
    write("src/data.json", "{\"memset\": \"master_key\"}\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error);
    EXPECT_EQ(result.files_scanned, 0u);
    EXPECT_TRUE(result.findings.empty());
}

// ---------------------------------------------------------------
// Emitters, round-tripped through the in-tree JSON parser.
// ---------------------------------------------------------------

namespace
{

LintResult
sampleResult()
{
    LintResult r;
    r.files_scanned = 2;
    r.findings.push_back({"secret-wipe", "src/a.cc", 3, 10,
                          "memset on 'master_key' may be optimized "
                          "away; use secureWipe()",
                          {}});
    r.findings.push_back({"banned-api", "src/b\"quote.cc", 7, 1,
                          "'sprintf' is banned: \"why\"",
                          {}});
    return r;
}

/** A result with one inter-procedural finding (carries a flow). */
LintResult
sampleFlowResult()
{
    LintResult r;
    r.files_scanned = 2;
    Finding f;
    f.rule = "secret-taint";
    f.file = "src/keys.cc";
    f.line = 5;
    f.col = 5;
    f.message = "key material 'master_key' flows into 'logLine' and "
                "reaches output sink 'cb_inform' (1 hop(s) away)";
    f.flow = {
        {"src/keys.cc", 4, 19,
         "source: identifier names key material ('master_key')"},
        {"src/keys.cc", 5, 5,
         "exportKey passes 'master_key' to 'logLine' parameter "
         "'data'"},
        {"src/report.cc", 3, 5, "sinks into 'cb_inform' in logLine"},
    };
    r.findings.push_back(std::move(f));
    return r;
}

} // anonymous namespace

TEST(LintEmit, TextFormat)
{
    auto text = emitText(sampleResult());
    EXPECT_NE(text.find("src/a.cc:3:10: [secret-wipe]"),
              std::string::npos);
    EXPECT_NE(text.find("2 file(s) scanned, 2 finding(s)"),
              std::string::npos);
}

TEST(LintEmit, JsonRoundTrip)
{
    auto parsed = obs::json::parse(emitJson(sampleResult()));
    ASSERT_TRUE(parsed.has_value());
    const auto *tool = parsed->find("tool");
    ASSERT_NE(tool, nullptr);
    EXPECT_EQ(tool->str, "coldboot-lint");
    const auto *version = parsed->find("version");
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->str, lintVersion());
    const auto *scanned = parsed->find("files_scanned");
    ASSERT_NE(scanned, nullptr);
    EXPECT_EQ(scanned->number, 2.0);

    const auto *findings = parsed->find("findings");
    ASSERT_NE(findings, nullptr);
    ASSERT_TRUE(findings->isArray());
    ASSERT_EQ(findings->array.size(), 2u);
    const auto &f0 = findings->array[0];
    EXPECT_EQ(f0.find("rule")->str, "secret-wipe");
    EXPECT_EQ(f0.find("file")->str, "src/a.cc");
    EXPECT_EQ(f0.find("line")->number, 3.0);
    EXPECT_EQ(f0.find("col")->number, 10.0);
    // The escaped quote in the second finding must survive.
    const auto &f1 = findings->array[1];
    EXPECT_EQ(f1.find("file")->str, "src/b\"quote.cc");
    EXPECT_NE(f1.find("message")->str.find("\"why\""),
              std::string::npos);
}

TEST(LintEmit, SarifRoundTrip)
{
    auto parsed = obs::json::parse(emitSarif(sampleResult()));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("version")->str, "2.1.0");

    const auto *runs = parsed->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->array.size(), 1u);
    const auto &run = runs->array[0];

    const auto &driver = *run.find("tool")->find("driver");
    EXPECT_EQ(driver.find("name")->str, "coldboot-lint");
    // Every catalog rule is declared.
    EXPECT_EQ(driver.find("rules")->array.size(),
              ruleCatalog().size());

    const auto *results = run.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->array.size(), 2u);
    const auto &r0 = results->array[0];
    EXPECT_EQ(r0.find("ruleId")->str, "secret-wipe");
    EXPECT_EQ(r0.find("level")->str, "error");
    const auto &loc =
        *r0.find("locations")->array[0].find("physicalLocation");
    EXPECT_EQ(loc.find("artifactLocation")->find("uri")->str,
              "src/a.cc");
    EXPECT_EQ(loc.find("region")->find("startLine")->number, 3.0);
    EXPECT_EQ(loc.find("region")->find("startColumn")->number, 10.0);
}

TEST(LintEmit, EmptyResultIsCleanJson)
{
    LintResult empty;
    auto parsed = obs::json::parse(emitJson(empty));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->find("findings")->array.empty());
    auto sarif = obs::json::parse(emitSarif(empty));
    ASSERT_TRUE(sarif.has_value());
    EXPECT_TRUE(sarif->find("runs")
                    ->array[0]
                    .find("results")
                    ->array.empty());
}

// ---------------------------------------------------------------
// Declaration/definition parser (parse.hh).
// ---------------------------------------------------------------

namespace
{

FileSummary
parseOf(const std::string &src)
{
    return parseSummary("a.cc", lex(src));
}

const FunctionDef *
fnNamed(const FileSummary &sum, const std::string &name)
{
    for (const auto &f : sum.functions)
        if (f.name == name)
            return &f;
    return nullptr;
}

} // anonymous namespace

TEST(LintParse, FunctionsParamsAndOutOfLineDefinitions)
{
    auto sum = parseOf(R"(
int add(int a, int b) { return a + b; }
void KeyMiner::mine(const std::vector<uint8_t> &dump, size_t limit)
{
    helper(dump);
}
void onlyDeclared(int x);
)");
    ASSERT_EQ(sum.functions.size(), 2u); // declarations are skipped
    const FunctionDef *add = fnNamed(sum, "add");
    ASSERT_NE(add, nullptr);
    ASSERT_EQ(add->params.size(), 2u);
    EXPECT_EQ(add->params[0].name, "a");
    EXPECT_EQ(add->params[1].name, "b");

    const FunctionDef *mine = fnNamed(sum, "mine");
    ASSERT_NE(mine, nullptr);
    EXPECT_EQ(mine->qual, "KeyMiner::mine");
    ASSERT_EQ(mine->params.size(), 2u);
    EXPECT_EQ(mine->params[0].name, "dump");
    ASSERT_EQ(mine->calls.size(), 1u);
    EXPECT_EQ(mine->calls[0].callee, "helper");
    ASSERT_EQ(mine->calls[0].args.size(), 1u);
    ASSERT_EQ(mine->calls[0].args[0].size(), 1u);
    EXPECT_EQ(mine->calls[0].args[0][0], "dump");
}

TEST(LintParse, TemplatesAndOverloads)
{
    auto sum = parseOf(R"(
template <typename T>
T biggest(const std::vector<T> &values)
{
    return pick<T>(values);
}
void emit(int level) { }
void emit(const char *text, int level) { }
)");
    const FunctionDef *big = fnNamed(sum, "biggest");
    ASSERT_NE(big, nullptr);
    ASSERT_EQ(big->params.size(), 1u);
    EXPECT_EQ(big->params[0].name, "values");
    // The templated call `pick<T>(values)` still records a site.
    ASSERT_EQ(big->calls.size(), 1u);
    EXPECT_EQ(big->calls[0].callee, "pick");

    // Both overloads become separate nodes.
    size_t emits = 0;
    for (const auto &f : sum.functions)
        emits += f.name == "emit";
    EXPECT_EQ(emits, 2u);
}

TEST(LintParse, LambdaBecomesLinkedFunction)
{
    auto sum = parseOf(R"(
void sweep()
{
    runJobs(4, [&](int worker) { step(worker); });
}
)");
    const FunctionDef *sweep = fnNamed(sum, "sweep");
    ASSERT_NE(sweep, nullptr);

    const FunctionDef *lam = nullptr;
    int lam_index = -1;
    for (size_t i = 0; i < sum.functions.size(); ++i)
        if (sum.functions[i].is_lambda) {
            lam = &sum.functions[i];
            lam_index = static_cast<int>(i);
        }
    ASSERT_NE(lam, nullptr);
    ASSERT_EQ(lam->params.size(), 1u);
    EXPECT_EQ(lam->params[0].name, "worker");
    ASSERT_EQ(lam->calls.size(), 1u);
    EXPECT_EQ(lam->calls[0].callee, "step");

    // The enclosing runJobs call points at the lambda node.
    const CallSite *run = nullptr;
    for (const auto &c : sweep->calls)
        if (c.callee == "runJobs")
            run = &c;
    ASSERT_NE(run, nullptr);
    ASSERT_EQ(run->lambda_args.size(), 1u);
    EXPECT_EQ(run->lambda_args[0], lam_index);
}

TEST(LintParse, MemberCallsAndBraceInitArguments)
{
    auto sum = parseOf(R"(
void flush(uint8_t *data, size_t n)
{
    mc->write(addr, {data, n});
    total = n + extra;
    total += n;
}
)");
    const FunctionDef *flush = fnNamed(sum, "flush");
    ASSERT_NE(flush, nullptr);
    const CallSite *write = nullptr;
    for (const auto &c : flush->calls)
        if (c.callee == "write")
            write = &c;
    ASSERT_NE(write, nullptr);
    EXPECT_TRUE(write->member);
    // The comma inside the brace-init stays within argument 1.
    ASSERT_EQ(write->args.size(), 2u);
    EXPECT_EQ(write->args[0],
              (std::vector<std::string>{"addr"}));
    EXPECT_EQ(write->args[1],
              (std::vector<std::string>{"data", "n"}));

    // Plain and compound assignments both record edges.
    ASSERT_EQ(flush->assigns.size(), 2u);
    EXPECT_EQ(flush->assigns[0].lhs, "total");
    EXPECT_EQ(flush->assigns[0].rhs,
              (std::vector<std::string>{"n", "extra"}));
    EXPECT_EQ(flush->assigns[1].lhs, "total");
}

TEST(LintParse, ForHeaderAssignDoesNotLeakIntoBody)
{
    auto sum = parseOf(R"(
void walk(uint8_t *data, size_t step)
{
    for (size_t off = 0; off < limit; off += step)
        sink(off, data);
}
)");
    const FunctionDef *walk = fnNamed(sum, "walk");
    ASSERT_NE(walk, nullptr);
    // `off += step` ends at the for-header's `)`; the body's `data`
    // must not appear in off's rhs (it would fabricate taint).
    for (const auto &a : walk->assigns) {
        if (a.lhs != "off")
            continue;
        for (const auto &r : a.rhs)
            EXPECT_NE(r, "data");
    }
}

TEST(LintParse, StructMembersAndDestructorWipes)
{
    auto sum = parseOf(R"(
struct Plain
{
    std::vector<uint8_t> bytes;
    int counts[4];
    void method(int x) { use(x); }
};
struct Wiped
{
    std::vector<uint8_t> buf;
    ~Wiped() { secureWipe(buf); }
};
struct Defaulted
{
    ~Defaulted() = default;
};
)");
    ASSERT_EQ(sum.structs.size(), 3u);
    const StructDef &plain = sum.structs[0];
    EXPECT_EQ(plain.name, "Plain");
    ASSERT_EQ(plain.members.size(), 2u); // methods are not members
    EXPECT_EQ(plain.members[0].name, "bytes");
    EXPECT_EQ(plain.members[1].name, "counts");
    EXPECT_NE(plain.members[1].type.find("[]"), std::string::npos);
    EXPECT_FALSE(plain.has_dtor);

    EXPECT_TRUE(sum.structs[1].has_dtor);
    EXPECT_TRUE(sum.structs[1].dtor_wipes);
    EXPECT_TRUE(sum.structs[2].has_dtor);
    EXPECT_FALSE(sum.structs[2].dtor_wipes);
}

// ---------------------------------------------------------------
// Call graph.
// ---------------------------------------------------------------

TEST(LintCallGraph, ResolvesByNameAcrossFiles)
{
    FileSummary a = parseSummary(
        "a.cc", lex("void caller() { helper(1); }"));
    FileSummary b = parseSummary(
        "b.cc", lex("void helper(int x) { }\n"
                    "void helper(long x) { }"));
    std::vector<FileSummary> sums = {a, b};
    CallGraph graph(sums);

    ASSERT_EQ(graph.nodes().size(), 3u);
    // Name-based resolution links to every same-named definition.
    const auto &ids = graph.resolve("helper");
    ASSERT_EQ(ids.size(), 2u);
    for (size_t id : ids)
        EXPECT_EQ(graph.nodes()[id].file->path, "b.cc");
    EXPECT_TRUE(graph.resolve("printf").empty());
}

// ---------------------------------------------------------------
// Cross-TU dataflow passes, driven through lintTree fixtures.
// ---------------------------------------------------------------

TEST_F(LintTreeTest, TaintTwoHopLeakAcrossFilesIsDetected)
{
    // The planted leak: key bytes flow exportKey -> writeReport ->
    // logLine -> cb_inform, with the middle hops in another TU.
    write("src/keys.cc",
          "void exportKey()\n"
          "{\n"
          "    unsigned char master_key[32];\n"
          "    deriveKey(master_key);\n"
          "    writeReport(master_key, 32);\n"
          "}\n");
    write("src/report.cc",
          "void logLine(const unsigned char *data, unsigned n)\n"
          "{\n"
          "    cb_inform(\"%s\", data);\n"
          "}\n"
          "void writeReport(const unsigned char *buf, unsigned n)\n"
          "{\n"
          "    logLine(buf, n);\n"
          "}\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error) << result.error_message;
    ASSERT_EQ(countRule(result.findings, "secret-taint"), 1u)
        << emitText(result);

    const Finding *f = nullptr;
    for (const auto &fd : result.findings)
        if (fd.rule == "secret-taint")
            f = &fd;
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->file, "src/keys.cc");
    EXPECT_EQ(f->line, 5); // the writeReport(master_key, ...) call
    // The flow walks source -> call hops -> sink, crossing TUs.
    ASSERT_GE(f->flow.size(), 3u);
    EXPECT_NE(f->flow.front().note.find("master_key"),
              std::string::npos);
    EXPECT_EQ(f->flow.back().file, "src/report.cc");
    EXPECT_NE(f->flow.back().note.find("cb_inform"),
              std::string::npos);
}

TEST_F(LintTreeTest, TaintCleanHelpersStayClean)
{
    // Same shape, but only the *length* reaches the sink, and a
    // memcmp verdict launders the comparison result.
    write("src/keys.cc",
          "void exportKey()\n"
          "{\n"
          "    unsigned char master_key[32];\n"
          "    deriveKey(master_key);\n"
          "    reportLength(master_key, 32);\n"
          "    int same = memcmp(master_key, expected, 32);\n"
          "    cb_inform(\"match=%d\", same);\n"
          "}\n");
    write("src/report.cc",
          "void reportLength(const unsigned char *buf, unsigned n)\n"
          "{\n"
          "    cb_inform(\"%u bytes\", n);\n"
          "}\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error) << result.error_message;
    EXPECT_EQ(countRule(result.findings, "secret-taint"), 0u)
        << emitText(result);
}

TEST_F(LintTreeTest, TransitiveDeterminismAcrossFiles)
{
    // The wall-clock read hides one call away from the parallel
    // body, in another TU; the token rule is disabled to prove the
    // call-graph pass finds it on its own.
    write("src/.coldboot-lint", "disable no-wallclock-in-sim\n");
    write("src/par.cc",
          "void sweep()\n"
          "{\n"
          "    parallelForChunks(0, 100, 10, [&](int lo, int hi) {\n"
          "        mixEntropy(lo, hi);\n"
          "    });\n"
          "}\n");
    write("src/entropy.cc",
          "void mixEntropy(int lo, int hi)\n"
          "{\n"
          "    long t = time(nullptr);\n"
          "}\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error) << result.error_message;
    ASSERT_EQ(countRule(result.findings, "transitive-determinism"),
              1u)
        << emitText(result);
    const Finding *f = nullptr;
    for (const auto &fd : result.findings)
        if (fd.rule == "transitive-determinism")
            f = &fd;
    ASSERT_NE(f, nullptr);
    // Anchored at the parallel call, pointing into the other TU.
    EXPECT_EQ(f->file, "src/par.cc");
    EXPECT_NE(f->message.find("mixEntropy"), std::string::npos);
    EXPECT_FALSE(f->flow.empty());
}

TEST_F(LintTreeTest, DirectNondetInLambdaIsTokenRuleTerritory)
{
    write("src/.coldboot-lint", "disable no-wallclock-in-sim\n");
    write("src/par.cc",
          "void sweep()\n"
          "{\n"
          "    parallelForChunks(0, 100, 10, [&](int lo, int hi) {\n"
          "        long t = time(nullptr);\n"
          "    });\n"
          "}\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error) << result.error_message;
    // Depth 0 belongs to no-wallclock-in-sim, not the graph pass.
    EXPECT_EQ(countRule(result.findings, "transitive-determinism"),
              0u)
        << emitText(result);
}

TEST_F(LintTreeTest, WipeCoveragePositiveNegativeAndCrossTu)
{
    write("src/bags.hh",
          "#pragma once\n"
          "struct KeyBag\n"
          "{\n"
          "    std::vector<unsigned char> master_key;\n"
          "};\n"
          "struct WipedBag\n"
          "{\n"
          "    std::vector<unsigned char> master_key;\n"
          "    ~WipedBag() { secureWipe(master_key); }\n"
          "};\n"
          "struct FarBag\n"
          "{\n"
          "    std::vector<unsigned char> session_key;\n"
          "    ~FarBag();\n"
          "};\n");
    // FarBag's wipe happens out-of-line, one call deep.
    write("src/bags.cc",
          "void wipeAll(std::vector<unsigned char> &v)\n"
          "{\n"
          "    secureWipe(v);\n"
          "}\n"
          "FarBag::~FarBag()\n"
          "{\n"
          "    wipeAll(session_key);\n"
          "}\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error) << result.error_message;
    ASSERT_EQ(countRule(result.findings, "wipe-coverage"), 1u)
        << emitText(result);
    const Finding *f = nullptr;
    for (const auto &fd : result.findings)
        if (fd.rule == "wipe-coverage")
            f = &fd;
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->message.find("KeyBag"), std::string::npos);
    EXPECT_NE(f->message.find("master_key"), std::string::npos);
}

TEST_F(LintTreeTest, CallGraphFindingsHonorSuppressions)
{
    write("src/bag.hh",
          "#pragma once\n"
          "// coldboot-lint: allow(wipe-coverage) -- test fixture\n"
          "struct KeyBag\n"
          "{\n"
          "    std::vector<unsigned char> master_key;\n"
          "};\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error) << result.error_message;
    EXPECT_EQ(countRule(result.findings, "wipe-coverage"), 0u)
        << emitText(result);
}

// ---------------------------------------------------------------
// Incremental cache.
// ---------------------------------------------------------------

TEST_F(LintTreeTest, CacheWarmRunIsAllHitsWithIdenticalFindings)
{
    write("src/bad.cc", "std::memset(master_key, 0, 64);\n");
    // A member-call `write` is not a taint sink; that depends on the
    // CallSite::member flag surviving the cache round trip.
    write("src/mem.cc",
          "void stash(unsigned char *master_key)\n"
          "{\n"
          "    mc->write(0, master_key);\n"
          "}\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    options.cache_dir = (root / "cache").string();

    auto cold = lintTree(options);
    ASSERT_FALSE(cold.internal_error) << cold.error_message;
    EXPECT_EQ(cold.cache_hits, 0u);
    EXPECT_EQ(cold.cache_misses, 2u);
    EXPECT_EQ(countRule(cold.findings, "secret-taint"), 0u);

    auto warm = lintTree(options);
    ASSERT_FALSE(warm.internal_error) << warm.error_message;
    EXPECT_EQ(warm.cache_hits, 2u);
    EXPECT_EQ(warm.cache_misses, 0u);
    ASSERT_EQ(warm.findings.size(), cold.findings.size());
    for (size_t i = 0; i < warm.findings.size(); ++i) {
        EXPECT_EQ(warm.findings[i].rule, cold.findings[i].rule);
        EXPECT_EQ(warm.findings[i].file, cold.findings[i].file);
        EXPECT_EQ(warm.findings[i].line, cold.findings[i].line);
        EXPECT_EQ(warm.findings[i].message,
                  cold.findings[i].message);
    }
    EXPECT_EQ(countRule(warm.findings, "secret-taint"), 0u);
}

TEST_F(LintTreeTest, CacheInvalidatesOnContentChange)
{
    write("src/a.cc", "int x;\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    options.cache_dir = (root / "cache").string();

    auto first = lintTree(options);
    EXPECT_EQ(first.cache_misses, 1u);
    EXPECT_TRUE(first.findings.empty());

    write("src/a.cc", "std::memset(master_key, 0, 64);\n");
    auto second = lintTree(options);
    EXPECT_EQ(second.cache_misses, 1u);
    EXPECT_EQ(countRule(second.findings, "secret-wipe"), 1u);
}

TEST_F(LintTreeTest, CacheInvalidatesOnConfigChange)
{
    write("src/bad.cc", "std::memset(master_key, 0, 64);\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    options.cache_dir = (root / "cache").string();

    auto first = lintTree(options);
    EXPECT_EQ(countRule(first.findings, "secret-wipe"), 1u);

    // Disabling a rule changes the ruleset hash, so the cached
    // artifacts (computed with the rule on) must not be reused.
    write("src/.coldboot-lint", "disable secret-wipe\n");
    auto second = lintTree(options);
    EXPECT_EQ(second.cache_hits, 0u);
    EXPECT_EQ(countRule(second.findings, "secret-wipe"), 0u);
}

TEST_F(LintTreeTest, CorruptCacheEntryIsIgnored)
{
    write("src/bad.cc", "std::memset(master_key, 0, 64);\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    options.cache_dir = (root / "cache").string();
    auto first = lintTree(options);
    ASSERT_EQ(countRule(first.findings, "secret-wipe"), 1u);

    // Truncate every cache entry mid-record: the loader requires the
    // `end` seal and must fall back to a fresh parse.
    for (const auto &e : fs::directory_iterator(root / "cache")) {
        std::ofstream out(e.path(),
                          std::ios::binary | std::ios::trunc);
        out << "coldboot-lint-cache 1 v1 garbage garbage\nF\t";
    }
    auto second = lintTree(options);
    EXPECT_EQ(second.cache_hits, 0u);
    EXPECT_EQ(countRule(second.findings, "secret-wipe"), 1u);
}

TEST(LintCache, ArtifactsRoundTripThroughDisk)
{
    fs::path dir = fs::temp_directory_path() /
                   ("coldboot_lint_cache_" + std::to_string(getpid()));
    fs::remove_all(dir);

    FileArtifacts art = {};
    art.findings.push_back(
        {"secret-wipe", "src/a.cc", 3, 7, "msg with\ttab", {}});
    art.suppressions.push_back({12, "banned-api", true});
    art.summary = parseSummary(
        "src/a.cc",
        lex("void f(uint8_t *key_buf)\n"
            "{\n"
            "    mc->write(0, {key_buf, 8});\n"
            "    out = mix(key_buf);\n"
            "}\n"
            "struct Bag { std::vector<uint8_t> master_key; };\n"));

    ASSERT_TRUE(cacheStore(dir.string(), "src/a.cc", 1, 2, art));
    FileArtifacts back;
    ASSERT_TRUE(cacheLoad(dir.string(), "src/a.cc", 1, 2, back));
    // Wrong content or ruleset hash misses.
    FileArtifacts miss;
    EXPECT_FALSE(cacheLoad(dir.string(), "src/a.cc", 9, 2, miss));
    EXPECT_FALSE(cacheLoad(dir.string(), "src/a.cc", 1, 9, miss));

    ASSERT_EQ(back.findings.size(), 1u);
    EXPECT_EQ(back.findings[0].message, "msg with\ttab");
    ASSERT_EQ(back.suppressions.size(), 1u);
    EXPECT_EQ(back.suppressions[0].line, 12);
    EXPECT_TRUE(back.suppressions[0].standalone);

    ASSERT_EQ(back.summary.functions.size(),
              art.summary.functions.size());
    const FunctionDef &fn = back.summary.functions[0];
    ASSERT_EQ(fn.params.size(), 1u);
    EXPECT_EQ(fn.params[0].name, "key_buf");
    const CallSite *write = nullptr;
    for (const auto &c : fn.calls)
        if (c.callee == "write")
            write = &c;
    ASSERT_NE(write, nullptr);
    EXPECT_TRUE(write->member); // the member flag must round-trip
    ASSERT_EQ(write->args.size(), 2u);
    EXPECT_EQ(write->args[1],
              (std::vector<std::string>{"key_buf"}));
    ASSERT_EQ(fn.assigns.size(), 1u);
    EXPECT_EQ(fn.assigns[0].lhs, "out");
    ASSERT_EQ(back.summary.structs.size(), 1u);
    EXPECT_EQ(back.summary.structs[0].name, "Bag");
    ASSERT_EQ(back.summary.structs[0].members.size(), 1u);
    EXPECT_EQ(back.summary.structs[0].members[0].name, "master_key");

    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// SARIF code flows.
// ---------------------------------------------------------------

TEST(LintEmit, SarifCodeFlowsRoundTrip)
{
    auto parsed = obs::json::parse(emitSarif(sampleFlowResult()));
    ASSERT_TRUE(parsed.has_value());
    const auto &run = parsed->find("runs")->array[0];
    const auto &r0 = run.find("results")->array[0];
    EXPECT_EQ(r0.find("ruleId")->str, "secret-taint");

    const auto *flows = r0.find("codeFlows");
    ASSERT_NE(flows, nullptr);
    ASSERT_EQ(flows->array.size(), 1u);
    const auto *threads = flows->array[0].find("threadFlows");
    ASSERT_NE(threads, nullptr);
    const auto *locs = threads->array[0].find("locations");
    ASSERT_NE(locs, nullptr);
    ASSERT_EQ(locs->array.size(), 3u);

    // Steps keep order, position, and message.
    const auto &step0 = *locs->array[0].find("location");
    const auto &phys0 = *step0.find("physicalLocation");
    EXPECT_EQ(phys0.find("artifactLocation")->find("uri")->str,
              "src/keys.cc");
    EXPECT_EQ(phys0.find("region")->find("startLine")->number, 4.0);
    EXPECT_NE(step0.find("message")->find("text")->str.find(
                  "master_key"),
              std::string::npos);
    const auto &step2 = *locs->array[2].find("location");
    EXPECT_EQ(step2.find("physicalLocation")
                  ->find("artifactLocation")
                  ->find("uri")
                  ->str,
              "src/report.cc");

    // Token-rule findings carry no codeFlows.
    auto plain = obs::json::parse(emitSarif(sampleResult()));
    ASSERT_TRUE(plain.has_value());
    const auto &p0 =
        plain->find("runs")->array[0].find("results")->array[0];
    EXPECT_EQ(p0.find("codeFlows"), nullptr);
}

TEST(LintEmit, SarifMatchesGoldenSnapshot)
{
#ifdef COLDBOOT_SOURCE_DIR
    std::ifstream in(std::string(COLDBOOT_SOURCE_DIR) +
                     "/tests/data/golden_lint.sarif");
    ASSERT_TRUE(in.is_open())
        << "tests/data/golden_lint.sarif missing";
    std::string golden((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    EXPECT_EQ(emitSarif(sampleFlowResult()), golden)
        << "SARIF emitter drifted from the golden snapshot; "
           "regenerate tests/data/golden_lint.sarif if the change "
           "is intentional";
#else
    GTEST_SKIP() << "COLDBOOT_SOURCE_DIR not defined";
#endif
}

TEST(LintEmit, JsonCarriesFlowAndCacheCounters)
{
    LintResult r = sampleFlowResult();
    r.cache_hits = 5;
    r.cache_misses = 2;
    auto parsed = obs::json::parse(emitJson(r));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("cache_hits")->number, 5.0);
    EXPECT_EQ(parsed->find("cache_misses")->number, 2.0);
    const auto &f0 = parsed->find("findings")->array[0];
    const auto *flow = f0.find("flow");
    ASSERT_NE(flow, nullptr);
    ASSERT_EQ(flow->array.size(), 3u);
    EXPECT_EQ(flow->array[0].find("file")->str, "src/keys.cc");
    EXPECT_EQ(flow->array[2].find("line")->number, 3.0);
}

// ---------------------------------------------------------------
// The real tree must be clean (mirrors the lint_tree ctest, but
// through the library API so failures show in unit-test output).
// ---------------------------------------------------------------

TEST(LintTree, RealTreeIsClean)
{
    // The source tree location is baked in by CMake.
#ifdef COLDBOOT_SOURCE_DIR
    LintOptions options;
    options.root = COLDBOOT_SOURCE_DIR;
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error) << result.error_message;
    EXPECT_GT(result.files_scanned, 100u);
    EXPECT_TRUE(result.findings.empty()) << emitText(result);
#else
    GTEST_SKIP() << "COLDBOOT_SOURCE_DIR not defined";
#endif
}
