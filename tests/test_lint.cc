/**
 * @file
 * Tests for coldboot-lint: tokenizer edge cases, every rule's
 * positive and negative cases, suppression handling, per-directory
 * config, tree walking, and the JSON/SARIF emitters round-tripped
 * through the in-tree obs::json parser.
 *
 * All violation samples live inside raw string literals, so this
 * file itself stays lint-clean.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "lint/engine.hh"
#include "lint/lexer.hh"
#include "lint/rules.hh"
#include "obs/json.hh"

namespace fs = std::filesystem;
using namespace coldboot;
using namespace coldboot::lint;

namespace
{

/** Findings for one in-memory source with no rules disabled. */
std::vector<Finding>
lintOf(const std::string &path, const std::string &src)
{
    return lintSource(path, src);
}

/** Count findings for a given rule. */
size_t
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    size_t n = 0;
    for (const auto &f : findings)
        n += f.rule == rule;
    return n;
}

} // anonymous namespace

// ---------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------

TEST(LintLexer, IdentifiersAndPositions)
{
    auto lexed = lex("foo bar\n  baz");
    ASSERT_EQ(lexed.tokens.size(), 3u);
    EXPECT_EQ(lexed.tokens[0].text, "foo");
    EXPECT_EQ(lexed.tokens[0].line, 1);
    EXPECT_EQ(lexed.tokens[0].col, 1);
    EXPECT_EQ(lexed.tokens[1].text, "bar");
    EXPECT_EQ(lexed.tokens[1].col, 5);
    EXPECT_EQ(lexed.tokens[2].text, "baz");
    EXPECT_EQ(lexed.tokens[2].line, 2);
    EXPECT_EQ(lexed.tokens[2].col, 3);
}

TEST(LintLexer, LineCommentsAreNotTokens)
{
    auto lexed = lex("a // memset(master_key)\nb");
    ASSERT_EQ(lexed.tokens.size(), 2u);
    EXPECT_EQ(lexed.tokens[0].text, "a");
    EXPECT_EQ(lexed.tokens[1].text, "b");
    ASSERT_EQ(lexed.comments.size(), 1u);
    EXPECT_EQ(lexed.comments[0].line, 1);
    EXPECT_NE(lexed.comments[0].text.find("memset"),
              std::string::npos);
}

TEST(LintLexer, BlockCommentsSpanLines)
{
    auto lexed = lex("a /* one\ntwo */ b");
    ASSERT_EQ(lexed.tokens.size(), 2u);
    EXPECT_EQ(lexed.tokens[1].text, "b");
    EXPECT_EQ(lexed.tokens[1].line, 2);
    ASSERT_EQ(lexed.comments.size(), 1u);
    EXPECT_EQ(lexed.comments[0].line, 1);
}

TEST(LintLexer, StringLiteralContentsNotTokenized)
{
    auto lexed = lex(R"lit(x = "memset(master_key, 0, 64)";)lit");
    for (const auto &t : lexed.tokens)
        EXPECT_NE(t.text, "memset");
    // Escaped quote stays inside the literal.
    auto esc = lex(R"lit(y = "a\"memset\"b"; z)lit");
    ASSERT_FALSE(esc.tokens.empty());
    EXPECT_EQ(esc.tokens.back().text, "z");
}

TEST(LintLexer, RawStringContentsNotTokenized)
{
    std::string src = "auto s = R\"lint(memset(master, 0, 4) "
                      "\"inner\" )x\" )lint\"; tail";
    auto lexed = lex(src);
    bool saw_memset = false, saw_tail = false;
    for (const auto &t : lexed.tokens) {
        saw_memset |= t.text == "memset";
        saw_tail |= t.text == "tail";
    }
    EXPECT_FALSE(saw_memset);
    EXPECT_TRUE(saw_tail);
}

TEST(LintLexer, CharLiteralsAndDigitSeparators)
{
    auto lexed = lex("char c = 'x'; int n = 1'000'000; a");
    EXPECT_EQ(lexed.tokens.back().text, "a");
    bool saw_number = false;
    for (const auto &t : lexed.tokens)
        if (t.kind == TokKind::Number)
            saw_number = t.text == "1'000'000";
    EXPECT_TRUE(saw_number);
}

TEST(LintLexer, PreprocessorDirectiveIsOneToken)
{
    auto lexed = lex("#include <sys/time.h>\nint x;");
    ASSERT_GE(lexed.tokens.size(), 1u);
    EXPECT_EQ(lexed.tokens[0].kind, TokKind::Preprocessor);
    // 'time' inside the include path must not be an identifier.
    for (size_t i = 1; i < lexed.tokens.size(); ++i)
        EXPECT_NE(lexed.tokens[i].text, "time");
}

TEST(LintLexer, PreprocessorContinuationJoined)
{
    auto lexed = lex("#define M(a) \\\n    (a + 1)\nint y;");
    ASSERT_GE(lexed.tokens.size(), 2u);
    EXPECT_EQ(lexed.tokens[0].kind, TokKind::Preprocessor);
    EXPECT_NE(lexed.tokens[0].text.find("(a + 1)"),
              std::string::npos);
    EXPECT_EQ(lexed.tokens[1].text, "int");
}

// ---------------------------------------------------------------
// secret-wipe.
// ---------------------------------------------------------------

TEST(LintRules, SecretWipePositive)
{
    auto f = lintOf("a.cc", R"(
void scrub(unsigned char *master_key) {
    std::memset(master_key, 0, 64);
})");
    ASSERT_EQ(countRule(f, "secret-wipe"), 1u);
    EXPECT_EQ(f[0].line, 3);

    auto g = lintOf("a.cc", "bzero(secret_buf, n);");
    EXPECT_EQ(countRule(g, "secret-wipe"), 1u);

    // The builtin spelling is just as elidable as the std one.
    auto h = lintOf("a.cc", "__builtin_memset(master_key, 0, 64);");
    EXPECT_EQ(countRule(h, "secret-wipe"), 1u);
}

TEST(LintRules, SecretWipeNegative)
{
    // Non-secret identifiers are fine to memset.
    auto f = lintOf("a.cc", "std::memset(buffer, 0, n);");
    EXPECT_EQ(countRule(f, "secret-wipe"), 0u);
    // Mentions in comments and strings are not calls.
    auto g = lintOf("a.cc",
                    "// std::memset(master, 0, 64)\n"
                    "const char *s = \"memset(master, 0, 64)\";");
    EXPECT_EQ(countRule(g, "secret-wipe"), 0u);
    // secureWipe itself is the fix, not a finding.
    auto h = lintOf("a.cc", "secureWipe(master_key, 64);");
    EXPECT_EQ(countRule(h, "secret-wipe"), 0u);
}

// ---------------------------------------------------------------
// banned-api.
// ---------------------------------------------------------------

TEST(LintRules, BannedApiPositive)
{
    auto f = lintOf("a.cc", R"(
int x = rand();
char b[8]; sprintf(b, "%d", x);
system("ls");
char *p = new char[32];
)");
    EXPECT_EQ(countRule(f, "banned-api"), 4u);
}

TEST(LintRules, BannedApiNegative)
{
    auto f = lintOf("a.cc", R"(
int random_value = myRandom();
auto widget = new Widget();
auto obj = new Thing(arg1, arg2);
int srandom = 3; (void)srandom;
snprintf(buf, sizeof(buf), "%d", 1);
)");
    EXPECT_EQ(countRule(f, "banned-api"), 0u);
}

// ---------------------------------------------------------------
// no-wallclock-in-sim.
// ---------------------------------------------------------------

TEST(LintRules, WallclockPositive)
{
    auto f = lintOf("a.cc", R"(
time_t t = time(nullptr);
auto n = std::chrono::system_clock::now();
std::random_device rd;
)");
    EXPECT_EQ(countRule(f, "no-wallclock-in-sim"), 3u);
}

TEST(LintRules, WallclockNegative)
{
    auto f = lintOf("a.cc", R"(
auto t0 = std::chrono::steady_clock::now();
engine.clock();
sim.time(5);
uint64_t sim_time = 7;
)");
    EXPECT_EQ(countRule(f, "no-wallclock-in-sim"), 0u);
}

// ---------------------------------------------------------------
// include-hygiene.
// ---------------------------------------------------------------

TEST(LintRules, HeaderGuardMissing)
{
    auto f = lintOf("a.hh", "int x;\n");
    EXPECT_EQ(countRule(f, "include-hygiene"), 1u);
    // Same content in a .cc is fine.
    auto g = lintOf("a.cc", "int x;\n");
    EXPECT_EQ(countRule(g, "include-hygiene"), 0u);
}

TEST(LintRules, HeaderGuardVariantsAccepted)
{
    auto pragma = lintOf("a.hh", "#pragma once\nint x;\n");
    EXPECT_EQ(countRule(pragma, "include-hygiene"), 0u);
    auto classic = lintOf("a.hh",
                          "#ifndef A_HH\n#define A_HH\nint x;\n"
                          "#endif\n");
    EXPECT_EQ(countRule(classic, "include-hygiene"), 0u);
    // Guard macro mismatch is not a guard.
    auto broken = lintOf("a.hh",
                         "#ifndef A_HH\n#define OTHER_HH\nint x;\n"
                         "#endif\n");
    EXPECT_EQ(countRule(broken, "include-hygiene"), 1u);
}

TEST(LintRules, UsingNamespaceInHeader)
{
    std::string guarded = "#pragma once\nusing namespace std;\n";
    auto f = lintOf("a.hh", guarded);
    EXPECT_EQ(countRule(f, "include-hygiene"), 1u);
    // In a .cc it is allowed (style handled elsewhere).
    auto g = lintOf("a.cc", "using namespace std;\n");
    EXPECT_EQ(countRule(g, "include-hygiene"), 0u);
    // `using x = y;` aliases are fine in headers.
    auto h = lintOf("a.hh", "#pragma once\nusing T = int;\n");
    EXPECT_EQ(countRule(h, "include-hygiene"), 0u);
}

// ---------------------------------------------------------------
// log-no-secrets.
// ---------------------------------------------------------------

TEST(LintRules, LogNoSecretsPositive)
{
    auto f = lintOf("a.cc",
                    "cb_inform(\"key=%s\", toHex(master_key));");
    EXPECT_EQ(countRule(f, "log-no-secrets"), 1u);
    auto g = lintOf("a.cc", "LOG_INFO(\"%p\", secret_ptr);");
    EXPECT_EQ(countRule(g, "log-no-secrets"), 1u);
}

TEST(LintRules, LogNoSecretsNegative)
{
    // Sizes and counts of key material are not key material.
    auto f = lintOf(
        "a.cc", "cb_inform(\"%zu keys\", mined_keys.size());");
    EXPECT_EQ(countRule(f, "log-no-secrets"), 0u);
    // Literals mentioning "key" are fine.
    auto g = lintOf("a.cc", "cb_inform(\"master key recovered\");");
    EXPECT_EQ(countRule(g, "log-no-secrets"), 0u);
    // Non-logging calls are out of scope for this rule.
    auto h = lintOf("a.cc", "store(master_key);");
    EXPECT_EQ(countRule(h, "log-no-secrets"), 0u);
}

TEST(LintRules, NoRawThreadPositive)
{
    auto f = lintOf("src/attack/scan.cc",
                    "std::thread worker(scanRange, lo, hi);");
    EXPECT_EQ(countRule(f, "no-raw-thread"), 1u);
    auto g = lintOf("tests/test_x.cc",
                    "std::vector<std::jthread> pool;");
    EXPECT_EQ(countRule(g, "no-raw-thread"), 1u);
    auto h = lintOf("bench/b.cc",
                    "pthread_create(&tid, nullptr, fn, arg);");
    EXPECT_EQ(countRule(h, "no-raw-thread"), 1u);
}

TEST(LintRules, NoRawThreadNegative)
{
    // src/exec/ owns the raw threads behind the ThreadPool.
    auto f = lintOf("src/exec/thread_pool.cc",
                    "std::vector<std::thread> threads;");
    EXPECT_EQ(countRule(f, "no-raw-thread"), 0u);
    // Scoped members are queries, not thread construction.
    auto g = lintOf("src/obs/trace.cc",
                    "std::thread::id id; unsigned n = "
                    "std::thread::hardware_concurrency();");
    EXPECT_EQ(countRule(g, "no-raw-thread"), 0u);
    // std::this_thread and plain identifiers named 'thread'.
    auto h = lintOf("src/a.cc",
                    "std::this_thread::yield(); int thread = 0;");
    EXPECT_EQ(countRule(h, "no-raw-thread"), 0u);
    // Suppressible like any other rule.
    auto s = lintOf(
        "tests/test_y.cc",
        "// coldboot-lint: allow(no-raw-thread) -- below the pool\n"
        "std::vector<std::thread> pool;");
    EXPECT_EQ(countRule(s, "no-raw-thread"), 0u);
}

TEST(LintRules, LooksSecret)
{
    EXPECT_TRUE(looksSecret("master_key"));
    EXPECT_TRUE(looksSecret("PassPhrase"));
    EXPECT_TRUE(looksSecret("the_secret"));
    EXPECT_FALSE(looksSecret("buffer"));
    EXPECT_FALSE(looksSecret("recovered"));
}

// ---------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------

TEST(LintSuppression, SameLineAndLineAbove)
{
    std::string same =
        "std::memset(master_key, 0, 64); "
        "// coldboot-lint: allow(secret-wipe) -- test fixture\n";
    EXPECT_EQ(countRule(lintOf("a.cc", same), "secret-wipe"), 0u);

    std::string above =
        "// coldboot-lint: allow(secret-wipe) -- test fixture\n"
        "std::memset(master_key, 0, 64);\n";
    EXPECT_EQ(countRule(lintOf("a.cc", above), "secret-wipe"), 0u);
}

TEST(LintSuppression, WrongRuleDoesNotSuppress)
{
    std::string src =
        "// coldboot-lint: allow(banned-api) -- wrong rule\n"
        "std::memset(master_key, 0, 64);\n";
    EXPECT_EQ(countRule(lintOf("a.cc", src), "secret-wipe"), 1u);
}

TEST(LintSuppression, TooFarAwayDoesNotSuppress)
{
    std::string src =
        "// coldboot-lint: allow(secret-wipe) -- too far\n"
        "int x;\n"
        "std::memset(master_key, 0, 64);\n";
    EXPECT_EQ(countRule(lintOf("a.cc", src), "secret-wipe"), 1u);
}

TEST(LintSuppression, MissingJustificationIsAFinding)
{
    std::string src =
        "// coldboot-lint: allow(secret-wipe)\n"
        "std::memset(master_key, 0, 64);\n";
    auto f = lintOf("a.cc", src);
    EXPECT_EQ(countRule(f, "bad-suppression"), 1u);
    // And the malformed suppression does not waive the finding.
    EXPECT_EQ(countRule(f, "secret-wipe"), 1u);
}

TEST(LintSuppression, UnknownRuleIsAFinding)
{
    std::string src =
        "// coldboot-lint: allow(no-such-rule) -- why\nint x;\n";
    EXPECT_EQ(countRule(lintOf("a.cc", src), "bad-suppression"), 1u);
}

TEST(LintSuppression, ProseMentionIsNotASuppression)
{
    std::string src =
        "// see the coldboot-lint: allow(secret-wipe) syntax\n"
        "int x;\n";
    EXPECT_EQ(countRule(lintOf("a.cc", src), "bad-suppression"), 0u);
}

// ---------------------------------------------------------------
// Rule catalog and disabling.
// ---------------------------------------------------------------

TEST(LintRules, CatalogKnowsEveryRule)
{
    EXPECT_GE(ruleCatalog().size(), 6u);
    EXPECT_TRUE(isKnownRule("secret-wipe"));
    EXPECT_TRUE(isKnownRule("banned-api"));
    EXPECT_TRUE(isKnownRule("no-wallclock-in-sim"));
    EXPECT_TRUE(isKnownRule("include-hygiene"));
    EXPECT_TRUE(isKnownRule("log-no-secrets"));
    EXPECT_TRUE(isKnownRule("bad-suppression"));
    EXPECT_FALSE(isKnownRule("no-such-rule"));
}

TEST(LintRules, DisabledRuleProducesNothing)
{
    std::string src = "std::memset(master_key, 0, 64);";
    auto f = lintSource("a.cc", src, {"secret-wipe"});
    EXPECT_EQ(countRule(f, "secret-wipe"), 0u);
}

// ---------------------------------------------------------------
// Tree walking and per-directory config.
// ---------------------------------------------------------------

class LintTreeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per process: gtest_discover_tests runs each case
        // as its own ctest entry, and parallel ctest must not have
        // two cases clobbering one shared fixture directory.
        root = fs::temp_directory_path() /
               ("coldboot_lint_gtest_" + std::to_string(getpid()));
        fs::remove_all(root);
        fs::create_directories(root / "src");
    }

    void TearDown() override { fs::remove_all(root); }

    void
    write(const std::string &rel, const std::string &content)
    {
        fs::path p = root / rel;
        fs::create_directories(p.parent_path());
        std::ofstream out(p);
        out << content;
    }

    fs::path root;
};

TEST_F(LintTreeTest, FindsViolationsWithRelativePaths)
{
    write("src/bad.cc", "std::memset(master_key, 0, 64);\n");
    write("src/good.cc", "int x;\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error);
    EXPECT_EQ(result.files_scanned, 2u);
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/bad.cc");
    EXPECT_EQ(result.findings[0].rule, "secret-wipe");
    EXPECT_EQ(result.findings[0].line, 1);
}

TEST_F(LintTreeTest, PerDirectoryConfigDisables)
{
    write("src/.coldboot-lint", "# config\ndisable secret-wipe\n");
    write("src/bad.cc", "std::memset(master_key, 0, 64);\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error);
    EXPECT_TRUE(result.findings.empty());
}

TEST_F(LintTreeTest, ConfigFileSubstringScopesTheDisable)
{
    write("src/.coldboot-lint", "disable secret-wipe smoke_\n");
    write("src/smoke_a.cc", "std::memset(master_key, 0, 64);\n");
    write("src/real.cc", "std::memset(master_key, 0, 64);\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error);
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/real.cc");
}

TEST_F(LintTreeTest, ConfigAppliesToSubdirectories)
{
    write(".coldboot-lint", "disable secret-wipe\n");
    write("src/deep/bad.cc", "std::memset(master_key, 0, 64);\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error);
    EXPECT_TRUE(result.findings.empty());
}

TEST_F(LintTreeTest, BrokenConfigIsInternalError)
{
    write("src/.coldboot-lint", "disable no-such-rule\n");
    write("src/a.cc", "int x;\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    EXPECT_TRUE(result.internal_error);
    EXPECT_NE(result.error_message.find("unknown rule"),
              std::string::npos);
}

TEST_F(LintTreeTest, MissingPathIsInternalError)
{
    LintOptions options;
    options.root = root.string();
    options.paths = {"nope"};
    auto result = lintTree(options);
    EXPECT_TRUE(result.internal_error);
}

TEST_F(LintTreeTest, NonSourceFilesIgnored)
{
    write("src/notes.md", "std::memset(master_key, 0, 64);\n");
    write("src/data.json", "{\"memset\": \"master_key\"}\n");

    LintOptions options;
    options.root = root.string();
    options.paths = {"src"};
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error);
    EXPECT_EQ(result.files_scanned, 0u);
    EXPECT_TRUE(result.findings.empty());
}

// ---------------------------------------------------------------
// Emitters, round-tripped through the in-tree JSON parser.
// ---------------------------------------------------------------

namespace
{

LintResult
sampleResult()
{
    LintResult r;
    r.files_scanned = 2;
    r.findings.push_back({"secret-wipe", "src/a.cc", 3, 10,
                          "memset on 'master_key' may be optimized "
                          "away; use secureWipe()"});
    r.findings.push_back({"banned-api", "src/b\"quote.cc", 7, 1,
                          "'sprintf' is banned: \"why\""});
    return r;
}

} // anonymous namespace

TEST(LintEmit, TextFormat)
{
    auto text = emitText(sampleResult());
    EXPECT_NE(text.find("src/a.cc:3:10: [secret-wipe]"),
              std::string::npos);
    EXPECT_NE(text.find("2 file(s) scanned, 2 finding(s)"),
              std::string::npos);
}

TEST(LintEmit, JsonRoundTrip)
{
    auto parsed = obs::json::parse(emitJson(sampleResult()));
    ASSERT_TRUE(parsed.has_value());
    const auto *tool = parsed->find("tool");
    ASSERT_NE(tool, nullptr);
    EXPECT_EQ(tool->str, "coldboot-lint");
    const auto *version = parsed->find("version");
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->str, lintVersion());
    const auto *scanned = parsed->find("files_scanned");
    ASSERT_NE(scanned, nullptr);
    EXPECT_EQ(scanned->number, 2.0);

    const auto *findings = parsed->find("findings");
    ASSERT_NE(findings, nullptr);
    ASSERT_TRUE(findings->isArray());
    ASSERT_EQ(findings->array.size(), 2u);
    const auto &f0 = findings->array[0];
    EXPECT_EQ(f0.find("rule")->str, "secret-wipe");
    EXPECT_EQ(f0.find("file")->str, "src/a.cc");
    EXPECT_EQ(f0.find("line")->number, 3.0);
    EXPECT_EQ(f0.find("col")->number, 10.0);
    // The escaped quote in the second finding must survive.
    const auto &f1 = findings->array[1];
    EXPECT_EQ(f1.find("file")->str, "src/b\"quote.cc");
    EXPECT_NE(f1.find("message")->str.find("\"why\""),
              std::string::npos);
}

TEST(LintEmit, SarifRoundTrip)
{
    auto parsed = obs::json::parse(emitSarif(sampleResult()));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("version")->str, "2.1.0");

    const auto *runs = parsed->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->array.size(), 1u);
    const auto &run = runs->array[0];

    const auto &driver = *run.find("tool")->find("driver");
    EXPECT_EQ(driver.find("name")->str, "coldboot-lint");
    // Every catalog rule is declared.
    EXPECT_EQ(driver.find("rules")->array.size(),
              ruleCatalog().size());

    const auto *results = run.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->array.size(), 2u);
    const auto &r0 = results->array[0];
    EXPECT_EQ(r0.find("ruleId")->str, "secret-wipe");
    EXPECT_EQ(r0.find("level")->str, "error");
    const auto &loc =
        *r0.find("locations")->array[0].find("physicalLocation");
    EXPECT_EQ(loc.find("artifactLocation")->find("uri")->str,
              "src/a.cc");
    EXPECT_EQ(loc.find("region")->find("startLine")->number, 3.0);
    EXPECT_EQ(loc.find("region")->find("startColumn")->number, 10.0);
}

TEST(LintEmit, EmptyResultIsCleanJson)
{
    LintResult empty;
    auto parsed = obs::json::parse(emitJson(empty));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->find("findings")->array.empty());
    auto sarif = obs::json::parse(emitSarif(empty));
    ASSERT_TRUE(sarif.has_value());
    EXPECT_TRUE(sarif->find("runs")
                    ->array[0]
                    .find("results")
                    ->array.empty());
}

// ---------------------------------------------------------------
// The real tree must be clean (mirrors the lint_tree ctest, but
// through the library API so failures show in unit-test output).
// ---------------------------------------------------------------

TEST(LintTree, RealTreeIsClean)
{
    // The source tree location is baked in by CMake.
#ifdef COLDBOOT_SOURCE_DIR
    LintOptions options;
    options.root = COLDBOOT_SOURCE_DIR;
    auto result = lintTree(options);
    ASSERT_FALSE(result.internal_error) << result.error_message;
    EXPECT_GT(result.files_scanned, 100u);
    EXPECT_TRUE(result.findings.empty()) << emitText(result);
#else
    GTEST_SKIP() << "COLDBOOT_SOURCE_DIR not defined";
#endif
}
