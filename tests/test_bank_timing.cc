/**
 * @file
 * Bank-level DDR4 timing simulator tests: protocol constraints
 * (tRCD/tRP/tCL/tCCD/tRAS), row hit vs miss behaviour, data-bus
 * saturation under row-hit bursts, and the engine-overlap analysis
 * that grounds the paper's zero-exposed-latency claim in protocol
 * timing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hh"
#include "dram/bank_timing.hh"
#include "dram/timing.hh"
#include "engine/cipher_engine.hh"

namespace coldboot::dram
{
namespace
{

BankTimingParams
ddr4_2400Params()
{
    return BankTimingParams::forGrade(ddr4_2400());
}

TEST(BankTiming, ColdReadPaysActPlusCas)
{
    BankTimingSimulator sim(ddr4_2400Params());
    std::vector<ReadRequest> reqs = {{0, 0, 5}};
    auto t = sim.simulateStream(reqs);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_FALSE(t[0].row_hit);
    // ACT at 0, CAS at tRCD, data at tRCD + tCL.
    const auto p = ddr4_2400Params();
    EXPECT_EQ(t[0].cas_cycle, p.t_rcd);
    EXPECT_EQ(t[0].data_cycle, p.t_rcd + p.t_cl);
}

TEST(BankTiming, RowHitPaysOnlyCas)
{
    BankTimingSimulator sim(ddr4_2400Params());
    std::vector<ReadRequest> reqs = {{0, 0, 5}, {1, 0, 5}};
    auto t = sim.simulateStream(reqs);
    EXPECT_FALSE(t[0].row_hit);
    EXPECT_TRUE(t[1].row_hit);
    const auto p = ddr4_2400Params();
    // Second CAS spaced by tCCD from the first.
    EXPECT_EQ(t[1].cas_cycle - t[0].cas_cycle, p.t_ccd);
    EXPECT_EQ(t[1].data_cycle - t[1].cas_cycle, p.t_cl);
}

TEST(BankTiming, RowConflictPaysPrechargePlusActivate)
{
    BankTimingSimulator sim(ddr4_2400Params());
    std::vector<ReadRequest> reqs = {{0, 0, 5}, {1, 0, 9}};
    auto t = sim.simulateStream(reqs);
    EXPECT_FALSE(t[1].row_hit);
    const auto p = ddr4_2400Params();
    // The conflicting read waits at least tRAS + tRP + tRCD from the
    // first activation.
    EXPECT_GE(t[1].cas_cycle, p.t_ras + p.t_rp + p.t_rcd);
}

TEST(BankTiming, BankParallelismHidesActivates)
{
    // Misses to different banks overlap their activations; misses to
    // one bank serialize.
    BankTimingParams p = ddr4_2400Params();
    BankTimingSimulator sim(p);
    std::vector<ReadRequest> spread, serial;
    for (unsigned i = 0; i < 8; ++i) {
        spread.push_back({i, i, 1});
        serial.push_back({i, 0, i + 1});
    }
    auto ts = sim.simulateStream(spread);
    BankTimingSimulator sim2(p);
    auto tt = sim2.simulateStream(serial);
    EXPECT_LT(ts.back().data_cycle, tt.back().data_cycle / 4);
}

TEST(BankTiming, RowHitBurstSaturatesDataBus)
{
    // The paper's peak case: row hits across banks return one
    // 64-byte burst per tCCD; data beats are back to back.
    BankTimingParams p = ddr4_2400Params();
    BankTimingSimulator sim(p);
    auto burst = sim.simulateRowHitBurst(18);
    ASSERT_EQ(burst.size(), 18u);
    for (size_t i = 1; i < burst.size(); ++i) {
        EXPECT_EQ(burst[i].cas_cycle - burst[i - 1].cas_cycle,
                  p.t_ccd)
            << i;
        EXPECT_TRUE(burst[i].row_hit);
        EXPECT_EQ(burst[i].data_cycle - burst[i - 1].data_cycle,
                  p.t_bl)
            << i;
    }
}

TEST(BankTiming, OutstandingCasWithinClWindowMatchesPaper)
{
    // "Up to 18 back-to-back CAS" - the number of bursts in flight
    // before the first data returns, at one burst per tCCD, is
    // bounded by the ~15 ns CAS window over the 3.33 ns burst slot;
    // our protocol model should land in the same mid-teens range.
    BankTimingParams p = ddr4_2400Params();
    BankTimingSimulator sim(p);
    auto burst = sim.simulateRowHitBurst(64);
    int64_t first_data = burst[0].data_cycle;
    int in_flight = 0;
    for (const auto &t : burst)
        in_flight += (t.cas_cycle < first_data);
    EXPECT_GE(in_flight, 3);
    EXPECT_LE(in_flight, 18);
}

TEST(BankTiming, EngineOverlapChaCha8FullyHidden)
{
    // Protocol-grounded version of the zero-exposed-latency claim.
    BankTimingParams p = ddr4_2400Params();
    BankTimingSimulator sim(p);
    auto burst = sim.simulateRowHitBurst(64);

    const auto &chacha = engine::engineSpec(
        engine::CipherKind::ChaCha8);
    Picoseconds exposure = engineExposureOverStream(
        burst, p, chacha.periodPs(), chacha.depthCycles(),
        chacha.counters_per_line);
    EXPECT_EQ(exposure, 0);
}

TEST(BankTiming, EngineOverlapChaCha20Exposed)
{
    BankTimingParams p = ddr4_2400Params();
    BankTimingSimulator sim(p);
    auto burst = sim.simulateRowHitBurst(64);
    const auto &chacha = engine::engineSpec(
        engine::CipherKind::ChaCha20);
    Picoseconds exposure = engineExposureOverStream(
        burst, p, chacha.periodPs(), chacha.depthCycles(),
        chacha.counters_per_line);
    EXPECT_GT(exposure, 0);
}

TEST(BankTiming, EngineOverlapAesHiddenAtBusRate)
{
    // At protocol rate (one CAS per tCCD = 3.33 ns) the AES engine's
    // 4-counter ingest (1.67 ns) keeps up, so AES is fully hidden -
    // the paper's queueing concern only bites for command bursts
    // faster than the data bus can serve anyway.
    BankTimingParams p = ddr4_2400Params();
    BankTimingSimulator sim(p);
    auto burst = sim.simulateRowHitBurst(64);
    const auto &aes = engine::engineSpec(engine::CipherKind::Aes128);
    Picoseconds exposure = engineExposureOverStream(
        burst, p, aes.periodPs(), aes.depthCycles(),
        aes.counters_per_line);
    EXPECT_EQ(exposure, 0);
}

TEST(BankTiming, GradeParamsTrackCas)
{
    for (const auto &grade : ddr4StandardGrades()) {
        auto p = BankTimingParams::forGrade(grade);
        EXPECT_EQ(p.t_cl, grade.cas_cycles);
        EXPECT_DOUBLE_EQ(p.bus_mhz, grade.bus_mhz);
    }
}

} // anonymous namespace
} // namespace coldboot::dram
