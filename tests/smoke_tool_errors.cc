/**
 * @file
 * Negative CLI smoke test: `coldboot-tool attack` / `mine` on broken
 * dump files - zero-length, non-64-multiple, truncated, missing -
 * must fail with exit code 1 and a clear one-line error on stderr,
 * never a crash (no signal termination). This pins the DumpSource
 * size-validation path end to end through the real binary, which the
 * in-process death tests (test_exec) cannot: cb_fatal must remain a
 * clean user-facing error, not an abort.
 *
 * Usage: smoke_tool_errors <path-to-coldboot-tool>
 */

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace
{

int failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what.c_str());
        ++failures;
    } else {
        std::printf("ok: %s\n", what.c_str());
    }
}

void
writeBytes(const std::string &path, size_t n)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::perror(path.c_str());
        std::exit(2);
    }
    for (size_t i = 0; i < n; ++i)
        std::fputc(static_cast<int>(i & 0xFF), f);
    std::fclose(f);
}

std::string
slurp(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/**
 * Run `coldboot-tool <cmd> <dump>`; require a normal exit with code
 * 1 (user error) and @p needle somewhere on stderr.
 */
void
expectCleanFailure(const std::string &tool, const std::string &cmd,
                   const std::string &dump, const std::string &needle,
                   const std::string &label)
{
    const std::string err_path = "smoke_tool_errors_stderr.txt";
    std::string shell = "\"" + tool + "\" " + cmd + " \"" + dump +
                        "\" > /dev/null 2> " + err_path;
    std::printf("+ %s\n", shell.c_str());
    int status = std::system(shell.c_str());

    check(status != -1 && WIFEXITED(status),
          label + ": exits normally (no crash/signal)");
    if (status != -1 && WIFEXITED(status))
        check(WEXITSTATUS(status) == 1,
              label + ": exit code 1, got " +
                  std::to_string(WEXITSTATUS(status)));
    std::string err = slurp(err_path);
    check(err.find(needle) != std::string::npos,
          label + ": stderr mentions '" + needle + "'");
    check(err.find('\n') != std::string::npos && err.size() < 512,
          label + ": error is a short clear message");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: smoke_tool_errors <coldboot-tool>\n");
        return 2;
    }
    std::string tool = argv[1];

    const std::string empty = "smoke_tool_errors_empty.img";
    const std::string odd = "smoke_tool_errors_odd.img";
    const std::string truncated = "smoke_tool_errors_trunc.img";
    const std::string missing = "smoke_tool_errors_missing.img";
    writeBytes(empty, 0);
    writeBytes(odd, 100);           // not a multiple of 64
    writeBytes(truncated, 64 * 16 + 17); // torn mid-line
    std::remove(missing.c_str());

    for (const std::string cmd : {"attack", "mine"}) {
        expectCleanFailure(tool, cmd, empty, "nonzero multiple",
                           cmd + " on zero-length dump");
        expectCleanFailure(tool, cmd, odd, "multiple of",
                           cmd + " on non-64-multiple dump");
        expectCleanFailure(tool, cmd, truncated, "multiple of",
                           cmd + " on truncated dump");
        expectCleanFailure(tool, cmd, missing, "open",
                           cmd + " on missing dump");
    }

    // The buffered (--no-mmap) path validates identically.
    expectCleanFailure(tool, "attack --no-mmap", odd, "multiple of",
                       "attack --no-mmap on non-64-multiple dump");

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("smoke_tool_errors: all checks passed\n");
    return 0;
}
