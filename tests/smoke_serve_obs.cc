/**
 * @file
 * Pure-ctest smoke test for the live observability plane (no Python,
 * no curl): build a tiny cold-boot dump in-process, run
 * `coldboot-tool attack --serve-obs 127.0.0.1:0` as a subprocess and,
 * while it is live,
 *
 *  - read the announced ephemeral port from its stdout;
 *  - scrape /healthz, /metrics (validated against the in-tree
 *    Prometheus exposition validator), /stats, /stats/series and
 *    /progress over raw sockets;
 *  - verify per-job /progress percent is monotonically
 *    non-decreasing across scrapes;
 *  - verify the final scraped /stats counters match the --stats-json
 *    artifact byte-for-value;
 *  - shut the run down via GET /quit (the linger test hook).
 *
 * Then the determinism gate: the attack's key-recovery output must be
 * byte-identical with --serve-obs on vs off, at pool widths 1 and 4
 * (DESIGN.md §9 - observation must not perturb results).
 *
 * Usage: smoke_serve_obs <path-to-coldboot-tool>
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hh"
#include "dram/dram_module.hh"
#include "obs/export.hh"
#include "obs/json.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;

namespace
{

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    } else {
        std::printf("ok: %s\n", what);
    }
}

/** A 2 MiB victim dump, mirroring `coldboot-tool simulate-victim`. */
void
writeTinyDump(const std::string &dump_path)
{
    constexpr uint64_t capacity = MiB(2);
    constexpr uint64_t seed = 42;

    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, seed);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, capacity,
                              dram::DecayParams{}, seed + 1));
    victim.boot();
    fillWorkload(victim, {}, seed + 2);

    auto vf = volume::VolumeFile::create("hunter2", 16, seed + 3);
    auto mounted = volume::MountedVolume::mount(
        victim, vf, "hunter2", capacity * 3 / 4 + 16);
    std::vector<uint8_t> secret(volume::sectorBytes, 0);
    std::memcpy(secret.data(), "smoke", 5);
    mounted->writeSector(3, secret);

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     seed + 4);
    auto cold = coldBootTransfer(victim, attacker, 0);
    cold.dump.saveRaw(dump_path);
}

/** One raw-socket HTTP GET against 127.0.0.1:@p port. */
struct HttpResponse
{
    int status = 0;
    std::string body;
    std::string raw;
};

HttpResponse
httpGet(uint16_t port, const std::string &path)
{
    HttpResponse out;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return out;
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                  sizeof(sa)) != 0) {
        ::close(fd);
        return out;
    }
    std::string req = "GET " + path + " HTTP/1.1\r\n"
                      "Host: localhost\r\nConnection: close\r\n\r\n";
    size_t off = 0;
    while (off < req.size()) {
        ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        out.raw.append(buf, static_cast<size_t>(n));
    ::close(fd);
    if (out.raw.size() > 12 && out.raw.rfind("HTTP/1.1 ", 0) == 0)
        out.status = std::atoi(out.raw.c_str() + 9);
    size_t hdr_end = out.raw.find("\r\n\r\n");
    if (hdr_end != std::string::npos)
        out.body = out.raw.substr(hdr_end + 4);
    return out;
}

/**
 * The deterministic portion of an `attack` run's stdout: the
 * mined/recovered/pair counts (timing figures stripped) and the
 * recovered key material. Everything else - MiB/s, RSS, the stats
 * table, the serve-obs announcement with its random port - is
 * timing- or port-dependent and excluded from the byte comparison.
 */
std::string
filterDeterministic(const std::string &output)
{
    std::string result;
    size_t pos = 0;
    while (pos < output.size()) {
        size_t eol = output.find('\n', pos);
        if (eol == std::string::npos)
            eol = output.size();
        std::string line = output.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("mined ", 0) == 0) {
            size_t cut = line.find("XTS pair(s);");
            if (cut != std::string::npos)
                line.resize(cut + std::strlen("XTS pair(s);"));
            result += line + "\n";
        } else if (line.rfind("XTS master keys", 0) == 0 ||
                   line.rfind("  data :", 0) == 0 ||
                   line.rfind("  tweak:", 0) == 0) {
            result += line + "\n";
        }
    }
    return result;
}

/** Run @p cmd, capture stdout; rc -1 on launch failure. */
int
runCapture(const std::string &cmd, std::string &output)
{
    output.clear();
    std::FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return -1;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        output.append(buf, n);
    return pclose(pipe);
}

bool
fileParses(const std::string &path)
{
    return obs::json::parseFile(path).has_value();
}

/** stats-JSON "value" of one stat entry; -1 when absent. */
double
statValue(const obs::json::Value &doc, const char *name)
{
    const auto *tree = doc.find("stats");
    const auto *entry = tree ? tree->find(name) : nullptr;
    const auto *value = entry ? entry->find("value") : nullptr;
    return value ? value->number : -1.0;
}

void
liveScrapeTest(const std::string &tool, const std::string &dump_path)
{
    const std::string stats_path = "smoke_serve_obs_stats.json";
    std::remove(stats_path.c_str());

    // Long linger so the scrapes below never race tool exit; /quit
    // ends it early, so the test doesn't actually wait this long.
    std::string cmd = "COLDBOOT_SERVE_OBS_LINGER_MS=60000 \"" + tool +
                      "\" attack \"" + dump_path +
                      "\" --serve-obs 127.0.0.1:0 --stats-json \"" +
                      stats_path + "\"";
    std::printf("+ %s\n", cmd.c_str());
    std::FILE *pipe = popen(cmd.c_str(), "r");
    check(pipe != nullptr, "serve-obs subprocess launched");
    if (pipe == nullptr)
        return;

    // The tool announces the resolved ephemeral port on its first
    // stdout line (flushed before the attack starts).
    uint16_t port = 0;
    char line[512];
    while (std::fgets(line, sizeof(line), pipe) != nullptr) {
        const char *marker = "serving observability on http://127.0.0.1:";
        const char *hit = std::strstr(line, marker);
        if (hit != nullptr) {
            port = static_cast<uint16_t>(
                std::atoi(hit + std::strlen(marker)));
            break;
        }
    }
    check(port != 0, "bound port announced on stdout");
    if (port == 0) {
        pclose(pipe);
        return;
    }

    auto health = httpGet(port, "/healthz");
    check(health.status == 200 && health.body == "ok\n",
          "/healthz live during the attack");

    // Scrape /progress until the --stats-json artifact lands
    // (written after the attack, before the linger loop). Per-job
    // percent must never go backwards between scrapes.
    std::map<uint64_t, double> last_percent;
    bool monotonic = true;
    bool progress_parsed = true;
    int scrapes = 0;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(120);
    while (std::chrono::steady_clock::now() < deadline) {
        auto resp = httpGet(port, "/progress");
        auto doc = obs::json::parse(resp.body);
        if (resp.status != 200 || !doc.has_value()) {
            progress_parsed = false;
            break;
        }
        ++scrapes;
        const auto *jobs = doc->find("jobs");
        if (jobs != nullptr) {
            for (const auto &j : jobs->array) {
                const auto *id = j.find("id");
                const auto *pct = j.find("percent");
                if (id == nullptr || pct == nullptr)
                    continue;
                auto key = static_cast<uint64_t>(id->number);
                auto it = last_percent.find(key);
                if (it != last_percent.end() &&
                    pct->number < it->second)
                    monotonic = false;
                last_percent[key] = pct->number;
            }
        }
        if (fileParses(stats_path))
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    check(progress_parsed, "/progress parses on every scrape");
    check(scrapes > 0, "scraped /progress at least once");
    check(monotonic, "/progress percent monotonically non-decreasing");
    check(fileParses(stats_path), "--stats-json artifact written");
    check(!last_percent.empty(), "progress jobs reported");
    // The attack is done (stats flushed): its jobs must read 100%.
    bool all_done = !last_percent.empty();
    {
        auto resp = httpGet(port, "/progress");
        auto doc = obs::json::parse(resp.body);
        const auto *jobs = doc ? doc->find("jobs") : nullptr;
        if (jobs == nullptr) {
            all_done = false;
        } else {
            for (const auto &j : jobs->array)
                all_done = all_done &&
                           j.find("percent")->number == 100.0 &&
                           j.find("finished")->boolean;
        }
    }
    check(all_done, "every job finished at 100%");

    // /metrics must be valid Prometheus text exposition while live.
    auto metrics = httpGet(port, "/metrics");
    check(metrics.status == 200, "/metrics answers 200");
    check(metrics.raw.find("text/plain; version=0.0.4") !=
              std::string::npos,
          "/metrics content type is exposition 0.0.4");
    std::string why;
    check(obs::validatePrometheusText(metrics.body, &why),
          "/metrics validates as Prometheus exposition");
    if (!why.empty())
        std::fprintf(stderr, "  validator: %s\n", why.c_str());
    check(metrics.body.find("attack_pipeline_bytes_scanned") !=
              std::string::npos,
          "/metrics carries attack counters");
    check(metrics.body.find("exec_pool_worker_0_tasks_executed") !=
              std::string::npos,
          "/metrics carries per-worker pool scalars");

    // /stats/series exposes the sampler's ring history.
    auto series = httpGet(port, "/stats/series");
    auto series_doc = obs::json::parse(series.body);
    check(series.status == 200 && series_doc.has_value() &&
              series_doc->find("series") != nullptr &&
              !series_doc->find("series")->array.empty(),
          "/stats/series carries sampled history");

    // Final scraped counters must match the --stats-json artifact:
    // the attack is finished, so the workload counters are static.
    auto scraped = obs::json::parse(httpGet(port, "/stats").body);
    auto artifact = obs::json::parseFile(stats_path);
    check(scraped.has_value() && artifact.has_value(),
          "final /stats and --stats-json both parse");
    if (scraped && artifact) {
        for (const char *key : {"attack.pipeline.bytes_scanned",
                                "attack.miner.blocks_scanned",
                                "attack.miner.litmus_hits",
                                "attack.search.blocks_scanned"}) {
            double live = statValue(*scraped, key);
            double file = statValue(*artifact, key);
            bool same = live >= 0.0 && live == file;
            if (!same)
                std::fprintf(stderr, "  %s: scraped %f vs file %f\n",
                             key, live, file);
            check(same, key);
        }
    }

    // End the linger via the /quit hook and reap the subprocess.
    auto quit = httpGet(port, "/quit");
    check(quit.status == 200, "GET /quit acknowledged");
    while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    }
    int rc = pclose(pipe);
    // 0 = keys recovered, 1 = none found; both are orderly exits.
    check(rc == 0 || rc == 1 * 256, "tool exited cleanly after /quit");
}

void
determinismTest(const std::string &tool, const std::string &dump_path)
{
    struct Variant
    {
        const char *label;
        std::string cmd;
    };
    const std::string base = "\"" + tool + "\" attack \"" + dump_path +
                             "\"";
    // Serve-obs exercised through both the flag and the environment
    // hook; port 0 keeps parallel ctest runs from colliding.
    std::vector<Variant> variants = {
        {"threads=1 serve=off", base + " --threads 1"},
        {"threads=1 serve=flag",
         base + " --threads 1 --serve-obs 127.0.0.1:0"},
        {"threads=4 serve=off", base + " --threads 4"},
        {"threads=4 serve=env",
         "COLDBOOT_SERVE_OBS=127.0.0.1:0 " + base + " --threads 4"},
    };

    std::string reference;
    for (const auto &v : variants) {
        std::printf("+ %s\n", v.cmd.c_str());
        std::string output;
        int rc = runCapture(v.cmd, output);
        check(rc == 0 || rc == 1 * 256, v.label);
        std::string filtered = filterDeterministic(output);
        check(!filtered.empty(), "attack output non-empty");
        if (reference.empty()) {
            reference = filtered;
            continue;
        }
        bool same = filtered == reference;
        if (!same)
            std::fprintf(stderr,
                         "  [%s] diverged:\n--- reference\n%s--- got\n"
                         "%s",
                         v.label, reference.c_str(), filtered.c_str());
        check(same, "attack results byte-identical to reference");
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: smoke_serve_obs <coldboot-tool>\n");
        return 2;
    }
    std::string tool = argv[1];
    std::string dump_path = "smoke_serve_obs_dump.img";
    writeTinyDump(dump_path);

    liveScrapeTest(tool, dump_path);
    determinismTest(tool, dump_path);

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("smoke_serve_obs: all checks passed\n");
    return 0;
}
