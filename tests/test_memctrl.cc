/**
 * @file
 * Memory-controller and scrambler tests. These verify every scrambler
 * property the paper reports from hardware analysis (Section II-C and
 * III-B): key-pool sizes, per-boot reset, the DDR3 universal-key
 * factoring, its absence on DDR4, the DDR4 byte-pair invariants, and
 * stable key sharing across reboots.
 */

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "common/bits.hh"
#include "common/hex.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "memctrl/lfsr.hh"
#include "memctrl/memory_controller.hh"
#include "memctrl/scrambler.hh"

namespace coldboot::memctrl
{
namespace
{

using dram::DramModule;
using dram::Generation;

TEST(Lfsr, ProducesNonTrivialSequence)
{
    Lfsr lfsr(Lfsr::taps32, 32, 0x1234);
    std::set<uint64_t> states;
    for (int i = 0; i < 1000; ++i) {
        lfsr.stepBit();
        states.insert(lfsr.state());
    }
    // No short cycle within 1000 steps.
    EXPECT_EQ(states.size(), 1000u);
}

TEST(Lfsr, ZeroSeedHandled)
{
    Lfsr lfsr(Lfsr::taps32, 32, 0);
    EXPECT_NE(lfsr.state(), 0u);
    uint64_t v = lfsr.stepBits(32);
    EXPECT_NE(v, 0u);
}

TEST(Lfsr, DeterministicPerSeed)
{
    Lfsr a(Lfsr::taps32, 32, 42), b(Lfsr::taps32, 32, 42);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.stepBit(), b.stepBit());
}

TEST(Lfsr, BitBalanceNearHalf)
{
    Lfsr lfsr(Lfsr::taps32, 32, 777);
    int ones = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ones += static_cast<int>(lfsr.stepBit());
    double frac = static_cast<double>(ones) / n;
    EXPECT_GT(frac, 0.48);
    EXPECT_LT(frac, 0.52);
}

TEST(AddressMap, SkylakeIsDdr4)
{
    EXPECT_TRUE(cpuUsesDdr4(CpuGeneration::Skylake));
    EXPECT_FALSE(cpuUsesDdr4(CpuGeneration::SandyBridge));
    EXPECT_FALSE(cpuUsesDdr4(CpuGeneration::IvyBridge));
}

TEST(AddressMap, SingleChannelIdentity)
{
    AddressMap map(CpuGeneration::Skylake, 1);
    EXPECT_EQ(map.channelOf(0x12340), 0u);
    EXPECT_EQ(map.moduleAddress(0x12340), 0x12340u);
}

TEST(AddressMap, DualChannelBalanced)
{
    for (auto gen : {CpuGeneration::SandyBridge,
                     CpuGeneration::IvyBridge,
                     CpuGeneration::Skylake}) {
        AddressMap map(gen, 2);
        int ch1 = 0;
        const int lines = 4096;
        for (int i = 0; i < lines; ++i)
            ch1 += static_cast<int>(map.channelOf(
                static_cast<uint64_t>(i) * 64));
        EXPECT_GT(ch1, lines / 3) << cpuGenerationName(gen);
        EXPECT_LT(ch1, 2 * lines / 3) << cpuGenerationName(gen);
    }
}

TEST(AddressMap, GenerationsDisagree)
{
    // The channel hash must differ between generations somewhere -
    // the attack model's same-generation requirement.
    AddressMap snb(CpuGeneration::SandyBridge, 2);
    AddressMap sky(CpuGeneration::Skylake, 2);
    int differ = 0;
    for (uint64_t line = 0; line < 8192; ++line)
        differ += snb.channelOf(line * 64) != sky.channelOf(line * 64);
    EXPECT_GT(differ, 0);
}

TEST(AddressMap, ModuleAddressesDenseAndDisjoint)
{
    AddressMap map(CpuGeneration::Skylake, 2);
    // Per channel, module line addresses must not collide.
    std::set<std::pair<unsigned, uint64_t>> seen;
    for (uint64_t line = 0; line < 4096; ++line) {
        uint64_t phys = line * 64;
        auto key = std::make_pair(map.channelOf(phys),
                                  map.moduleAddress(phys));
        EXPECT_TRUE(seen.insert(key).second)
            << "collision at line " << line;
        EXPECT_EQ(key.second % 64, 0u);
    }
}

TEST(Ddr3Scrambler, SixteenDistinctKeys)
{
    Ddr3Scrambler s(0xDEADBEEF, 0);
    EXPECT_EQ(s.distinctKeys(), 16u);
    std::set<std::string> keys;
    for (uint64_t line = 0; line < 4096; ++line) {
        uint8_t key[lineBytes];
        s.lineKey(line * 64, key);
        keys.insert(toHex({key, lineBytes}));
    }
    EXPECT_EQ(keys.size(), 16u);
}

TEST(Ddr3Scrambler, RebootFactorsToUniversalKey)
{
    // The DDR3 weakness: XOR of per-address keys across two boots is
    // one universal 64-byte key for the whole memory (Figure 3c).
    Ddr3Scrambler boot1(111, 0);
    Ddr3Scrambler boot2(222, 0);
    std::array<uint8_t, lineBytes> universal{};
    bool first = true;
    for (uint64_t line = 0; line < 1024; ++line) {
        uint8_t k1[lineBytes], k2[lineBytes];
        boot1.lineKey(line * 64, k1);
        boot2.lineKey(line * 64, k2);
        std::array<uint8_t, lineBytes> x;
        for (size_t i = 0; i < lineBytes; ++i)
            x[i] = static_cast<uint8_t>(k1[i] ^ k2[i]);
        if (first) {
            universal = x;
            first = false;
        } else {
            ASSERT_EQ(x, universal) << "line " << line;
        }
    }
}

TEST(Ddr3Scrambler, SeedChangesKeys)
{
    Ddr3Scrambler a(1, 0), b(2, 0);
    uint8_t ka[lineBytes], kb[lineBytes];
    a.lineKey(0, ka);
    b.lineKey(0, kb);
    EXPECT_NE(0, memcmp(ka, kb, lineBytes));
}

TEST(Ddr4Scrambler, FourThousandDistinctKeys)
{
    Ddr4Scrambler s(0xFEEDFACE, 0);
    EXPECT_EQ(s.distinctKeys(), 4096u);
    std::set<std::string> keys;
    for (unsigned idx = 0; idx < 4096; ++idx) {
        uint8_t key[lineBytes];
        s.poolKey(idx, key);
        keys.insert(toHex({key, lineBytes}));
    }
    EXPECT_EQ(keys.size(), 4096u);
}

TEST(Ddr4Scrambler, KeyIndexUsesBits17to6)
{
    // Lines 256 KiB apart share a key; lines 64 B apart do not
    // (in general).
    Ddr4Scrambler s(5, 0);
    uint8_t a[lineBytes], b[lineBytes], c[lineBytes];
    s.lineKey(0x0, a);
    s.lineKey(0x40000, b); // 256 KiB: bits [17:6] wrap
    s.lineKey(0x40, c);
    EXPECT_EQ(0, memcmp(a, b, lineBytes));
    EXPECT_NE(0, memcmp(a, c, lineBytes));
}

TEST(Ddr4Scrambler, NoUniversalKeyAfterReboot)
{
    // DDR4 fixes the DDR3 weakness: XOR across boots is NOT a single
    // universal key (Figure 3e).
    Ddr4Scrambler boot1(111, 0);
    Ddr4Scrambler boot2(222, 0);
    std::set<std::string> xors;
    for (unsigned idx = 0; idx < 256; ++idx) {
        uint8_t k1[lineBytes], k2[lineBytes];
        boot1.poolKey(idx, k1);
        boot2.poolKey(idx, k2);
        std::array<uint8_t, lineBytes> x;
        for (size_t i = 0; i < lineBytes; ++i)
            x[i] = static_cast<uint8_t>(k1[i] ^ k2[i]);
        xors.insert(toHex(x));
    }
    // Nearly every key index should have its own XOR pattern.
    EXPECT_GT(xors.size(), 250u);
}

TEST(Ddr4Scrambler, KeySharingStableAcrossReboot)
{
    // Blocks that share a scrambler key keep sharing one after
    // reboot (the index depends only on address bits).
    EXPECT_EQ(Ddr4Scrambler::keyIndex(0x1000),
              Ddr4Scrambler::keyIndex(0x1000 + (1ULL << 18)));
    EXPECT_NE(Ddr4Scrambler::keyIndex(0x1000),
              Ddr4Scrambler::keyIndex(0x2000));
}

TEST(Ddr4Scrambler, PaperInvariantsHoldForEveryKey)
{
    // Section III-B: the four byte-pair XOR relations inside every
    // 16-byte-aligned word of every 64-byte scrambler key.
    Ddr4Scrambler s(0xABCD, 1);
    auto word = [](const uint8_t *k, unsigned byte) {
        return loadLE16(k + byte);
    };
    for (unsigned idx = 0; idx < 4096; ++idx) {
        uint8_t k[lineBytes];
        s.poolKey(idx, k);
        for (unsigned i = 0; i < 64; i += 16) {
            const uint8_t *p = k + i;
            ASSERT_EQ(word(p, 2) ^ word(p, 4),
                      word(p, 10) ^ word(p, 12)) << idx;
            ASSERT_EQ(word(p, 0) ^ word(p, 6),
                      word(p, 8) ^ word(p, 14)) << idx;
            ASSERT_EQ(word(p, 0) ^ word(p, 4),
                      word(p, 8) ^ word(p, 12)) << idx;
            ASSERT_EQ(word(p, 0) ^ word(p, 2),
                      word(p, 8) ^ word(p, 10)) << idx;
        }
    }
}

TEST(Ddr4Scrambler, KeysLookRandomOtherwise)
{
    // Bit balance across the pool should be near 50% - the scrambler
    // must still do its signal-integrity job.
    Ddr4Scrambler s(99, 0);
    size_t ones = 0;
    for (unsigned idx = 0; idx < 4096; ++idx) {
        uint8_t k[lineBytes];
        s.poolKey(idx, k);
        ones += hammingWeight({k, lineBytes});
    }
    double frac = static_cast<double>(ones) / (4096.0 * 64 * 8);
    EXPECT_GT(frac, 0.48);
    EXPECT_LT(frac, 0.52);
}

TEST(Ddr4Scrambler, ChannelsHaveIndependentPools)
{
    Ddr4Scrambler ch0(7, 0), ch1(7, 1);
    uint8_t a[lineBytes], b[lineBytes];
    ch0.poolKey(0, a);
    ch1.poolKey(0, b);
    EXPECT_NE(0, memcmp(a, b, lineBytes));
}

std::shared_ptr<DramModule>
makeDimm(Generation gen, uint64_t bytes, uint64_t seed)
{
    return std::make_shared<DramModule>(gen, bytes, dram::DecayParams{},
                                        seed);
}

TEST(MemoryController, ScrambledRoundTrip)
{
    MemoryController mc(CpuGeneration::Skylake, 1, 42);
    mc.attachDimm(0, makeDimm(Generation::DDR4, MiB(1), 1));

    std::vector<uint8_t> data(256);
    Xoshiro256StarStar rng(2);
    rng.fillBytes(data);
    mc.write(0x1000, data);
    std::vector<uint8_t> back(256);
    mc.read(0x1000, back);
    EXPECT_EQ(data, back);
}

TEST(MemoryController, DataInDramIsScrambled)
{
    MemoryController mc(CpuGeneration::Skylake, 1, 42);
    auto dimm = makeDimm(Generation::DDR4, MiB(1), 1);
    mc.attachDimm(0, dimm);

    std::vector<uint8_t> zeros(64, 0);
    mc.write(0x0, zeros);
    // Raw DRAM contents must be nonzero (they hold the scrambler key).
    std::vector<uint8_t> raw(64);
    dimm->read(0, raw);
    EXPECT_GT(hammingWeight(raw), 100u);
}

TEST(MemoryController, DisabledScramblerStoresPlaintext)
{
    MemoryController mc(CpuGeneration::Skylake, 1, 42);
    auto dimm = makeDimm(Generation::DDR4, MiB(1), 1);
    mc.attachDimm(0, dimm);
    mc.setScramblingEnabled(false);

    std::vector<uint8_t> pattern(64, 0x5a);
    mc.write(0x40, pattern);
    std::vector<uint8_t> raw(64);
    dimm->read(0x40, raw);
    EXPECT_EQ(raw, pattern);
}

TEST(MemoryController, ZeroWriteExposesScramblerKey)
{
    // The core observation behind key mining: writing zeros through
    // the scrambler stores the raw scrambler key in DRAM.
    MemoryController mc(CpuGeneration::Skylake, 1, 77);
    auto dimm = makeDimm(Generation::DDR4, MiB(1), 1);
    mc.attachDimm(0, dimm);

    std::vector<uint8_t> zeros(64, 0);
    mc.write(0x2000, zeros);
    std::vector<uint8_t> raw(64);
    dimm->read(0x2000, raw);

    uint8_t key[lineBytes];
    mc.scrambler(0).lineKey(0x2000, key);
    EXPECT_EQ(0, memcmp(raw.data(), key, lineBytes));
}

TEST(MemoryController, ReseedChangesStoredView)
{
    MemoryController mc(CpuGeneration::Skylake, 1, 1);
    mc.attachDimm(0, makeDimm(Generation::DDR4, MiB(1), 1));

    std::vector<uint8_t> data(64, 0xab);
    mc.write(0x0, data);
    mc.reseed(2); // reboot with a fresh seed
    std::vector<uint8_t> back(64);
    mc.read(0x0, back);
    EXPECT_NE(back, data); // old data now descrambles incorrectly
}

TEST(MemoryController, DualChannelRoutesToBothDimms)
{
    MemoryController mc(CpuGeneration::Skylake, 2, 3);
    auto d0 = makeDimm(Generation::DDR4, MiB(1), 10);
    auto d1 = makeDimm(Generation::DDR4, MiB(1), 11);
    mc.attachDimm(0, d0);
    mc.attachDimm(1, d1);
    EXPECT_EQ(mc.capacity(), MiB(2));

    std::vector<uint8_t> data(64, 0x99);
    for (uint64_t line = 0; line < 512; ++line)
        mc.write(line * 64, data);

    // Both DIMMs must have received nontrivial traffic.
    auto nonzero = [](const DramModule &m) {
        size_t count = 0;
        for (uint8_t b : m.raw())
            count += (b != 0);
        return count;
    };
    EXPECT_GT(nonzero(*d0), 1000u);
    EXPECT_GT(nonzero(*d1), 1000u);
}

TEST(MemoryController, DetachReattachPreservesContents)
{
    // The cold boot primitive: pull a DIMM, plug it into another
    // machine, contents travel with it.
    MemoryController victim(CpuGeneration::Skylake, 1, 4);
    auto dimm = makeDimm(Generation::DDR4, MiB(1), 12);
    victim.attachDimm(0, dimm);
    std::vector<uint8_t> data(64, 0x3c);
    victim.write(0x80, data);

    auto pulled = victim.detachDimm(0);
    EXPECT_EQ(victim.dimm(0), nullptr);

    MemoryController attacker(CpuGeneration::Skylake, 1, 5);
    attacker.attachDimm(0, pulled);
    attacker.setScramblingEnabled(false);
    std::vector<uint8_t> raw(64);
    attacker.read(0x80, raw);

    uint8_t key[lineBytes];
    victim.scrambler(0).lineKey(0x80, key);
    for (size_t i = 0; i < lineBytes; ++i)
        EXPECT_EQ(raw[i], static_cast<uint8_t>(data[i] ^ key[i]));
}

TEST(MemoryController, MisalignedAccessFatal)
{
    MemoryController mc(CpuGeneration::Skylake, 1, 1);
    mc.attachDimm(0, makeDimm(Generation::DDR4, MiB(1), 1));
    std::vector<uint8_t> data(64, 0);
    EXPECT_DEATH(mc.write(3, data), "aligned");
}

TEST(MemoryController, GenerationSelectsScramblerType)
{
    MemoryController snb(CpuGeneration::SandyBridge, 1, 1);
    MemoryController sky(CpuGeneration::Skylake, 1, 1);
    EXPECT_STREQ(snb.scrambler(0).name(), "ddr3-scrambler");
    EXPECT_STREQ(sky.scrambler(0).name(), "ddr4-scrambler");
    EXPECT_EQ(snb.scrambler(0).distinctKeys(), 16u);
    EXPECT_EQ(sky.scrambler(0).distinctKeys(), 4096u);
}

} // anonymous namespace
} // namespace coldboot::memctrl
