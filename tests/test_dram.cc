/**
 * @file
 * DRAM substrate tests: decay model calibration (the paper's
 * Section III-D observations), ground-state structure, module
 * power/transfer behaviour, timing tables.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "dram/decay_model.hh"
#include "dram/dram_module.hh"
#include "dram/timing.hh"

namespace coldboot::dram
{
namespace
{

TEST(Timing, NineStandardDdr4Grades)
{
    const auto &grades = ddr4StandardGrades();
    ASSERT_EQ(grades.size(), 9u);
    // Paper: all standard CAS latencies lie in [12.5 ns, 15.01 ns].
    for (const auto &g : grades) {
        EXPECT_GE(g.casLatencyPs(), nsToPs(12.49)) << g.name;
        EXPECT_LE(g.casLatencyPs(), nsToPs(15.02)) << g.name;
    }
    EXPECT_EQ(ddr4MinCasPs(), nsToPs(12.5));
    EXPECT_GE(ddr4MaxCasPs(), nsToPs(15.0));
}

TEST(Timing, Ddr4_2400Characteristics)
{
    const auto &g = ddr4_2400();
    EXPECT_DOUBLE_EQ(g.bus_mhz, 1200.0);
    EXPECT_EQ(g.casLatencyPs(), nsToPs(12.5));
    // 64B burst at 1200 MHz bus: 4 clocks = 3.33 ns.
    EXPECT_NEAR(psToNs(g.burstTimePs()), 3.33, 0.01);
}

TEST(DecayModel, ColderMeansLongerRetention)
{
    DecayModel model({}, 1);
    EXPECT_GT(model.tau(-25.0), model.tau(20.0));
    EXPECT_GT(model.tau(-50.0), model.tau(-25.0));
    // Monotone decayed fraction in time.
    EXPECT_LT(model.decayedFraction(1.0, 20.0),
              model.decayedFraction(5.0, 20.0));
}

TEST(DecayModel, PaperCalibrationPoints)
{
    // Section III-D: at -25 C modules retain 90-99% of charge over a
    // ~5 s transfer; at room temperature a significant fraction of
    // data is lost within ~3 s.
    DecayModel model({}, 1);
    double cold = model.decayedFraction(5.0, -25.0);
    EXPECT_GT(cold, 0.01);
    EXPECT_LT(cold, 0.10);

    double warm = model.decayedFraction(3.0, 20.0);
    EXPECT_GT(warm, 0.30); // "significant fraction"
}

TEST(DecayModel, GroundStateRoughlyBalanced)
{
    // True/anti cell stripes: about half of memory decays to 1.
    DecayModel model({}, 7);
    uint64_t ones = 0;
    const uint64_t total = 1 << 20;
    for (uint64_t bit = 0; bit < total; ++bit)
        ones += model.groundStateBit(bit);
    double frac = static_cast<double>(ones) / total;
    EXPECT_GT(frac, 0.45);
    EXPECT_LT(frac, 0.55);
}

TEST(DecayModel, GroundStateDeterministic)
{
    DecayModel a({}, 9), b({}, 9), c({}, 10);
    int diff_same_seed = 0, diff_other_seed = 0;
    for (uint64_t bit = 0; bit < 100000; ++bit) {
        diff_same_seed += a.groundStateBit(bit) != b.groundStateBit(bit);
        diff_other_seed += a.groundStateBit(bit) != c.groundStateBit(bit);
    }
    EXPECT_EQ(diff_same_seed, 0);
    EXPECT_GT(diff_other_seed, 0);
}

TEST(DecayModel, ApplyDecayFlipCountTracksProbability)
{
    DecayModel model({}, 3);
    // Memory holding the complement of ground state: every decayed
    // cell flips visibly.
    std::vector<uint8_t> data(MiB(1));
    model.decayToGround(data);
    for (auto &b : data)
        b = static_cast<uint8_t>(~b);

    double p = model.decayedFraction(5.0, -25.0);
    uint64_t flips = model.applyDecay(data, 5.0, -25.0);
    double total_bits = static_cast<double>(data.size()) * 8;
    double measured = static_cast<double>(flips) / total_bits;
    EXPECT_NEAR(measured, p, 0.1 * p + 1e-4);
}

TEST(DecayModel, NoDecayAtZeroTime)
{
    DecayModel model({}, 4);
    std::vector<uint8_t> data(4096, 0xaa);
    EXPECT_EQ(model.applyDecay(data, 0.0, 20.0), 0u);
    for (uint8_t b : data)
        EXPECT_EQ(b, 0xaa);
}

TEST(DecayModel, FullDecayReachesGroundState)
{
    DecayModel model({}, 5);
    std::vector<uint8_t> data(8192, 0x5c);
    model.applyDecay(data, 1e9, 20.0);
    std::vector<uint8_t> ground(8192);
    model.decayToGround(ground);
    EXPECT_EQ(data, ground);
}

TEST(DramModule, ReadWriteRoundTrip)
{
    DramModule mod(Generation::DDR4, KiB(64), {}, 11);
    std::vector<uint8_t> data(256);
    Xoshiro256StarStar rng(1);
    rng.fillBytes(data);
    mod.write(4096, data);
    std::vector<uint8_t> back(256);
    mod.read(4096, back);
    EXPECT_EQ(data, back);
}

TEST(DramModule, PoweredModuleDoesNotDecay)
{
    DramModule mod(Generation::DDR4, KiB(64), {}, 12);
    std::vector<uint8_t> data(KiB(64), 0x77);
    mod.write(0, data);
    EXPECT_EQ(mod.elapse(100.0), 0u);
    std::vector<uint8_t> back(KiB(64));
    mod.read(0, back);
    EXPECT_EQ(back, data);
}

TEST(DramModule, UnpoweredModuleDecays)
{
    DramModule mod(Generation::DDR4, MiB(1), {}, 13);
    std::vector<uint8_t> ground(MiB(1));
    mod.decayModel().decayToGround(ground);
    // Store the complement of ground state so decay is visible.
    std::vector<uint8_t> data(MiB(1));
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(~ground[i]);
    mod.write(0, data);

    mod.powerOff();
    mod.coolTo(-25.0);
    uint64_t flips = mod.elapse(5.0);
    EXPECT_GT(flips, 0u);

    double retention = mod.retentionVersus(data);
    EXPECT_GT(retention, 0.90);
    EXPECT_LT(retention, 0.999);
}

TEST(DramModule, WarmModuleLosesMoreThanColdModule)
{
    auto run = [](double celsius) {
        DramModule mod(Generation::DDR3, MiB(1), {}, 21);
        std::vector<uint8_t> data(MiB(1), 0xa5);
        mod.write(0, data);
        mod.powerOff();
        mod.coolTo(celsius);
        mod.elapse(5.0);
        return mod.retentionVersus(data);
    };
    EXPECT_LT(run(20.0), run(-25.0));
}

TEST(DramModule, WriteWhileUnpoweredIgnored)
{
    DramModule mod(Generation::DDR4, KiB(64), {}, 14);
    std::vector<uint8_t> data(64, 0x11);
    mod.write(0, data);
    mod.powerOff();
    std::vector<uint8_t> other(64, 0x22);
    mod.write(0, other);
    std::vector<uint8_t> back(64);
    mod.read(0, back);
    EXPECT_EQ(back, data);
}

TEST(DramModule, CapacityMustBeLineMultiple)
{
    EXPECT_DEATH(
        { DramModule mod(Generation::DDR4, 100, {}, 1); }, "multiple");
}

TEST(DramModule, CatalogHasSevenModulesWithOneLeaky)
{
    const auto &catalog = moduleCatalog();
    ASSERT_EQ(catalog.size(), 7u);
    int ddr3 = 0, ddr4 = 0, leaky = 0;
    for (const auto &e : catalog) {
        ddr3 += e.generation == Generation::DDR3;
        ddr4 += e.generation == Generation::DDR4;
        leaky += e.quality < 0.5;
    }
    EXPECT_EQ(ddr3, 5);
    EXPECT_EQ(ddr4, 2);
    EXPECT_EQ(leaky, 1);
}

TEST(DramModule, CatalogModulesInstantiate)
{
    for (const auto &entry : moduleCatalog()) {
        auto mod = makeCatalogModule(entry, 99);
        EXPECT_EQ(mod->size(), entry.bytes);
        EXPECT_EQ(mod->generation(), entry.generation);
        EXPECT_EQ(mod->modelName(), entry.model_name);
    }
}

} // anonymous namespace
} // namespace coldboot::dram
