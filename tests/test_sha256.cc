/**
 * @file
 * SHA-256 / HMAC-SHA256 / PBKDF2 known-answer and property tests.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hh"
#include "common/rng.hh"
#include "crypto/sha256.hh"

namespace coldboot::crypto
{
namespace
{

std::vector<uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

TEST(Sha256, EmptyString)
{
    auto d = Sha256::digest({});
    EXPECT_EQ(toHex(d),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    auto msg = bytesOf("abc");
    auto d = Sha256::digest(msg);
    EXPECT_EQ(toHex(d),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    auto msg = bytesOf(
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
    auto d = Sha256::digest(msg);
    EXPECT_EQ(toHex(d),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    std::vector<uint8_t> chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    auto d = h.finish();
    EXPECT_EQ(toHex(d),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    Xoshiro256StarStar rng(31);
    std::vector<uint8_t> msg(5000);
    rng.fillBytes(msg);

    auto one_shot = Sha256::digest(msg);

    // Feed in awkward chunk sizes crossing block boundaries.
    Sha256 h;
    size_t off = 0;
    size_t sizes[] = {1, 63, 64, 65, 127, 128, 129, 200, 1000};
    size_t si = 0;
    while (off < msg.size()) {
        size_t n = std::min(sizes[si % std::size(sizes)],
                            msg.size() - off);
        h.update({&msg[off], n});
        off += n;
        ++si;
    }
    EXPECT_EQ(toHex(h.finish()), toHex(one_shot));
}

// RFC 4231 HMAC-SHA256 test cases.
TEST(HmacSha256, Rfc4231Case1)
{
    std::vector<uint8_t> key(20, 0x0b);
    auto data = bytesOf("Hi There");
    auto mac = hmacSha256(key, data);
    EXPECT_EQ(toHex(mac),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2)
{
    auto key = bytesOf("Jefe");
    auto data = bytesOf("what do ya want for nothing?");
    auto mac = hmacSha256(key, data);
    EXPECT_EQ(toHex(mac),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case6LongKey)
{
    std::vector<uint8_t> key(131, 0xaa);
    auto data = bytesOf(
        "Test Using Larger Than Block-Size Key - Hash Key First");
    auto mac = hmacSha256(key, data);
    EXPECT_EQ(toHex(mac),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

// PBKDF2-HMAC-SHA256 vectors (widely published; e.g. RFC 7914 S2).
TEST(Pbkdf2, OneIteration)
{
    auto pw = bytesOf("passwd");
    auto salt = bytesOf("salt");
    auto dk = pbkdf2Sha256(pw, salt, 1, 64);
    EXPECT_EQ(toHex({dk.data(), 32}),
              "55ac046e56e3089fec1691c22544b605"
              "f94185216dde0465e68b9d57c20dacbc");
}

TEST(Pbkdf2, ManyIterations)
{
    auto pw = bytesOf("Password");
    auto salt = bytesOf("NaCl");
    auto dk = pbkdf2Sha256(pw, salt, 80000, 64);
    EXPECT_EQ(toHex({dk.data(), 32}),
              "4ddcd8f60b98be21830cee5ef22701f9"
              "641a4418d04c0414aeff08876b34ab56");
}

TEST(Pbkdf2, DerivedLengthHonored)
{
    auto pw = bytesOf("p");
    auto salt = bytesOf("s");
    for (size_t len : {1u, 31u, 32u, 33u, 100u}) {
        auto dk = pbkdf2Sha256(pw, salt, 2, len);
        EXPECT_EQ(dk.size(), len);
    }
}

TEST(Pbkdf2, SaltSensitivity)
{
    auto pw = bytesOf("password");
    auto s1 = bytesOf("salt1");
    auto s2 = bytesOf("salt2");
    EXPECT_NE(toHex(pbkdf2Sha256(pw, s1, 10, 32)),
              toHex(pbkdf2Sha256(pw, s2, 10, 32)));
}

} // anonymous namespace
} // namespace coldboot::crypto
