/**
 * @file
 * Cycle-accurate pipeline model tests: bit-exactness against the
 * behavioural ciphers, Table II latency from first principles, issue
 * throughput, and cross-validation against the analytic queueing
 * model used for Figure 6.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/chacha.hh"
#include "crypto/ctr.hh"
#include "dram/timing.hh"
#include "engine/latency_sim.hh"
#include "engine/pipelined_engines.hh"

namespace coldboot::engine
{
namespace
{

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    std::vector<uint8_t> out(n);
    rng.fillBytes(out);
    return out;
}

TEST(PipelinedAes, BitExactVersusBehavioralCtr)
{
    for (size_t key_len : {16u, 32u}) {
        auto key = randomBytes(key_len, 1);
        auto nonce = randomBytes(8, 2);
        crypto::AesCtr reference(key, nonce);
        PipelinedAesEngine engine(key, nonce);

        for (uint64_t line : {0ull, 7ull, 123456ull}) {
            engine.request(line, line);
        }
        std::map<uint64_t, LineCompletion> done;
        while (engine.busy()) {
            engine.clock();
            for (auto &c : engine.drain())
                done[c.req_id] = c;
        }
        ASSERT_EQ(done.size(), 3u);
        for (uint64_t line : {0ull, 7ull, 123456ull}) {
            uint8_t expect[64];
            reference.lineKeystream(line, expect);
            ASSERT_EQ(0, memcmp(done[line].keystream.data(), expect,
                                64))
                << "key_len=" << key_len << " line=" << line;
        }
    }
}

TEST(PipelinedChaCha, BitExactVersusBehavioral)
{
    for (int rounds : {8, 12, 20}) {
        auto key = randomBytes(32, 3);
        auto nonce = randomBytes(8, 4);
        crypto::ChaCha reference(key, nonce, rounds);
        PipelinedChaChaEngine engine(key, nonce, rounds);

        for (uint64_t ctr : {0ull, 1ull, 99ull})
            engine.request(ctr, ctr);
        std::map<uint64_t, LineCompletion> done;
        while (engine.busy()) {
            engine.clock();
            for (auto &c : engine.drain())
                done[c.req_id] = c;
        }
        ASSERT_EQ(done.size(), 3u);
        for (uint64_t ctr : {0ull, 1ull, 99ull}) {
            uint8_t expect[64];
            reference.keystreamBlock(ctr, expect);
            ASSERT_EQ(0, memcmp(done[ctr].keystream.data(), expect,
                                64))
                << "rounds=" << rounds << " ctr=" << ctr;
        }
    }
}

TEST(PipelinedAes, TableIILatencyFromStructure)
{
    // A single line request completes in exactly the Table II cycle
    // count: 13 for AES-128 (10 rounds + 3 extra counter issues),
    // 17 for AES-256.
    struct Case
    {
        size_t key_len;
        uint64_t expect_cycles;
    };
    for (auto c : {Case{16, 13}, Case{32, 17}}) {
        auto key = randomBytes(c.key_len, 5);
        auto nonce = randomBytes(8, 6);
        PipelinedAesEngine engine(key, nonce);
        engine.request(1, 42);
        uint64_t done_cycle = 0;
        while (engine.busy()) {
            engine.clock();
            for (auto &comp : engine.drain())
                done_cycle = comp.cycle;
        }
        EXPECT_EQ(done_cycle, c.expect_cycles)
            << "key_len " << c.key_len;
    }
}

TEST(PipelinedChaCha, TableIILatencyFromStructure)
{
    struct Case
    {
        int rounds;
        uint64_t expect_cycles;
    };
    for (auto c : {Case{8, 18}, Case{12, 26}, Case{20, 42}}) {
        auto key = randomBytes(32, 7);
        auto nonce = randomBytes(8, 8);
        PipelinedChaChaEngine engine(key, nonce, c.rounds);
        engine.request(1, 9);
        uint64_t done_cycle = 0;
        while (engine.busy()) {
            engine.clock();
            for (auto &comp : engine.drain())
                done_cycle = comp.cycle;
        }
        EXPECT_EQ(done_cycle, c.expect_cycles)
            << "rounds " << c.rounds;
    }
}

TEST(PipelinedAes, FullyPipelinedThroughput)
{
    // Back-to-back requests drain at 4 cycles per line (one counter
    // per cycle) once the pipeline fills.
    auto key = randomBytes(16, 9);
    auto nonce = randomBytes(8, 10);
    PipelinedAesEngine engine(key, nonce);
    const int n = 32;
    for (int i = 0; i < n; ++i)
        engine.request(static_cast<uint64_t>(i), i);
    std::vector<uint64_t> cycles;
    while (engine.busy()) {
        engine.clock();
        for (auto &c : engine.drain())
            cycles.push_back(c.cycle);
    }
    ASSERT_EQ(cycles.size(), static_cast<size_t>(n));
    for (size_t i = 1; i < cycles.size(); ++i)
        EXPECT_EQ(cycles[i] - cycles[i - 1], 4u) << i;
}

TEST(PipelinedChaCha, FullyPipelinedThroughput)
{
    // One line per cycle once full.
    auto key = randomBytes(32, 11);
    auto nonce = randomBytes(8, 12);
    PipelinedChaChaEngine engine(key, nonce, 8);
    const int n = 32;
    for (int i = 0; i < n; ++i)
        engine.request(static_cast<uint64_t>(i), i);
    std::vector<uint64_t> cycles;
    while (engine.busy()) {
        engine.clock();
        for (auto &c : engine.drain())
            cycles.push_back(c.cycle);
    }
    ASSERT_EQ(cycles.size(), static_cast<size_t>(n));
    for (size_t i = 1; i < cycles.size(); ++i)
        EXPECT_EQ(cycles[i] - cycles[i - 1], 1u) << i;
}

TEST(PipelinedCrossValidation, MatchesAnalyticBurstModel)
{
    // Drive the structural pipelines with the same 18-deep
    // back-to-back burst the Figure 6 analytic model assumes and
    // check the worst keystream latency agrees (within one engine
    // clock of rounding).
    const auto &grade = dram::ddr4_2400();
    Picoseconds bus_clock =
        static_cast<Picoseconds>(1.0e6 / grade.bus_mhz + 0.5);

    struct Case
    {
        CipherKind kind;
        int rounds; // 0 = AES
        size_t key_len;
    };
    for (auto c : {Case{CipherKind::Aes128, 0, 16},
                   Case{CipherKind::ChaCha8, 8, 32},
                   Case{CipherKind::ChaCha20, 20, 32}}) {
        const EngineSpec &spec = engineSpec(c.kind);
        auto analytic = simulateBurst(spec, grade, {1.0, 18});

        auto key = randomBytes(c.key_len, 13);
        auto nonce = randomBytes(8, 14);
        std::unique_ptr<PipelinedEngine> engine;
        if (c.rounds == 0)
            engine =
                std::make_unique<PipelinedAesEngine>(key, nonce);
        else
            engine = std::make_unique<PipelinedChaChaEngine>(
                key, nonce, c.rounds);

        // Issue requests at bus-clock spacing, engine clock ticks at
        // its own period.
        Picoseconds period = spec.periodPs();
        std::vector<Picoseconds> issue_time(18), done_time(18, -1);
        unsigned issued = 0;
        Picoseconds worst = 0;
        for (uint64_t tick = 1; tick < 10000; ++tick) {
            Picoseconds now = static_cast<Picoseconds>(tick) * period;
            while (issued < 18 &&
                   static_cast<Picoseconds>(issued) * bus_clock <
                       now) {
                issue_time[issued] =
                    static_cast<Picoseconds>(issued) * bus_clock;
                engine->request(issued, issued);
                ++issued;
            }
            engine->clock();
            for (auto &comp : engine->drain()) {
                done_time[comp.req_id] = now;
                worst = std::max(worst,
                                 now - issue_time[comp.req_id]);
            }
            if (issued == 18 && !engine->busy())
                break;
        }
        for (auto t : done_time)
            ASSERT_GE(t, 0) << cipherKindName(c.kind);

        double analytic_ns =
            psToNs(analytic.max_keystream_latency_ps);
        double structural_ns = psToNs(worst);
        EXPECT_NEAR(structural_ns, analytic_ns,
                    2.0 * psToNs(period) + 0.9)
            << cipherKindName(c.kind);
    }
}

} // anonymous namespace
} // namespace coldboot::engine
