/**
 * @file
 * Pure-ctest smoke test for the coldboot-tool observability exports
 * (no Python, no third-party JSON): build a tiny cold-boot dump
 * in-process, run `coldboot-tool attack <dump> --stats-json --trace`
 * as a subprocess, then validate with the in-tree JSON parser that
 *
 *  - the stats file parses and carries the required keys, with
 *    `attack.pipeline.bytes_scanned` nonzero;
 *  - the trace file parses as a bare array of Chrome complete events
 *    ({"name","ph","ts","dur","pid","tid"}) containing the mine /
 *    search / pair stage spans.
 *
 * Usage: smoke_stats_json <path-to-coldboot-tool>
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/units.hh"
#include "dram/dram_module.hh"
#include "obs/json.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;

namespace
{

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    } else {
        std::printf("ok: %s\n", what);
    }
}

/** A 2 MiB victim dump, mirroring `coldboot-tool simulate-victim`. */
void
writeTinyDump(const std::string &dump_path)
{
    constexpr uint64_t capacity = MiB(2);
    constexpr uint64_t seed = 42;

    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, seed);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, capacity,
                              dram::DecayParams{}, seed + 1));
    victim.boot();
    fillWorkload(victim, {}, seed + 2);

    auto vf = volume::VolumeFile::create("hunter2", 16, seed + 3);
    auto mounted = volume::MountedVolume::mount(
        victim, vf, "hunter2", capacity * 3 / 4 + 16);
    std::vector<uint8_t> secret(volume::sectorBytes, 0);
    std::memcpy(secret.data(), "smoke", 5);
    mounted->writeSector(3, secret);

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     seed + 4);
    auto cold = coldBootTransfer(victim, attacker, 0);
    cold.dump.saveRaw(dump_path);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: smoke_stats_json <coldboot-tool>\n");
        return 2;
    }
    std::string tool = argv[1];
    std::string dump_path = "smoke_stats_dump.img";
    std::string stats_path = "smoke_stats_out.json";
    std::string trace_path = "smoke_stats_trace.json";
    std::remove(stats_path.c_str());
    std::remove(trace_path.c_str());

    writeTinyDump(dump_path);

    std::string cmd = "\"" + tool + "\" attack \"" + dump_path +
                      "\" --stats-json \"" + stats_path +
                      "\" --trace \"" + trace_path + "\"";
    std::printf("+ %s\n", cmd.c_str());
    int rc = std::system(cmd.c_str());
    // rc 0 = keys recovered, 1*256 = none found; both still must
    // produce the observability artifacts.
    check(rc != -1, "coldboot-tool subprocess launched");

    // --- stats JSON ---
    auto stats = obs::json::parseFile(stats_path);
    check(stats.has_value(), "stats JSON parses");
    if (stats) {
        check(stats->isObject(), "stats JSON is an object");
        const auto *meta = stats->find("meta");
        check(meta && meta->find("wall_seconds"),
              "stats meta.wall_seconds present");
        const auto *tree = stats->find("stats");
        check(tree != nullptr, "stats.stats present");
        if (tree) {
            // (memctrl.* counters live in simulate-victim runs; the
            // attack command only ever sees the saved dump.)
            for (const char *key :
                 {"attack.pipeline.bytes_scanned",
                  "attack.pipeline.mib_per_second",
                  "attack.miner.blocks_scanned",
                  "attack.miner.litmus_hits",
                  "attack.search.blocks_scanned"}) {
                check(tree->find(key) != nullptr, key);
            }
            const auto *scanned =
                tree->find("attack.pipeline.bytes_scanned");
            if (scanned) {
                const auto *value = scanned->find("value");
                check(value && value->number > 0.0,
                      "attack.pipeline.bytes_scanned > 0");
            }
        }
    }

    // --- Chrome trace ---
    auto trace = obs::json::parseFile(trace_path);
    check(trace.has_value(), "trace JSON parses");
    if (trace) {
        check(trace->isArray(), "trace JSON is a bare array");
        std::set<std::string> names;
        bool fields_ok = !trace->array.empty();
        for (const auto &ev : trace->array) {
            const auto *name = ev.find("name");
            const auto *ph = ev.find("ph");
            fields_ok = fields_ok && ev.isObject() && name && ph &&
                        ph->str == "X" && ev.find("ts") &&
                        ev.find("dur") && ev.find("pid") &&
                        ev.find("tid");
            if (name)
                names.insert(name->str);
        }
        check(fields_ok,
              "every trace event has name/ph=X/ts/dur/pid/tid");
        for (const char *span : {"mine", "search", "pair",
                                 "attack.pipeline"})
            check(names.count(span) == 1, span);
    }

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("smoke_stats_json: all checks passed\n");
    return 0;
}
