/**
 * @file
 * Cross-module integration tests beyond the headline end-to-end
 * scenario: dual-channel attacks (8192 keys), other AES variants,
 * attack-model violations (cross-generation dumps), parallel scan
 * determinism, seed-reusing BIOS behaviour, and failure injection.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "attack/aes_search.hh"
#include "attack/attack_pipeline.hh"
#include "attack/key_miner.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "dram/dram_module.hh"
#include "memctrl/scrambler.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

namespace coldboot::attack
{
namespace
{

using crypto::AesKeySize;
using dram::DramModule;
using platform::BiosConfig;
using platform::cpuModelByName;
using platform::Machine;
using platform::MemoryImage;

std::shared_ptr<DramModule>
ddr4(uint64_t bytes, uint64_t seed)
{
    return std::make_shared<DramModule>(dram::Generation::DDR4, bytes,
                                        dram::DecayParams{}, seed);
}

TEST(DualChannel, AttackRecoversKeysAcrossInterleave)
{
    // Dual-channel Skylake victim: the keytable's lines interleave
    // across two DIMMs and two independent 4096-key scramblers. The
    // attacker moves both DIMMs (coldBootTransferAll), dumps the
    // reassembled physical space, and mines up to 8192 keys.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 2, 201);
    victim.installDimm(0, ddr4(MiB(4), 202));
    victim.installDimm(1, ddr4(MiB(4), 203));
    victim.boot();
    EXPECT_EQ(victim.capacity(), MiB(8));
    platform::fillWorkload(victim, {}, 204);

    auto vf = volume::VolumeFile::create("pw", 8, 205);
    uint64_t keytable_addr = MiB(6) + 16;
    auto mounted =
        volume::MountedVolume::mount(victim, vf, "pw", keytable_addr);
    ASSERT_TRUE(mounted);
    std::vector<uint8_t> expected(mounted->masterKeys().begin(),
                                  mounted->masterKeys().end());

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 2,
                     206);
    auto cold = platform::coldBootTransferAll(victim, attacker);
    EXPECT_EQ(cold.dump.size(), MiB(8));

    PipelineParams params;
    params.search.scan_start = MiB(6) - KiB(64);
    params.search.scan_bytes = KiB(192);
    auto report = runColdBootAttack(cold.dump, params);

    // Two channels' pools: mining approaches 8192 distinct keys.
    EXPECT_GT(report.mined_keys.size(), 6000u);
    ASSERT_GE(report.xts_pairs.size(), 1u);
    EXPECT_EQ(memcmp(report.xts_pairs[0].data_key.data(),
                     expected.data(), 32),
              0);
    EXPECT_EQ(memcmp(report.xts_pairs[0].tweak_key.data(),
                     expected.data() + 32, 32),
              0);
}

/** Synthetic scrambled dump holding one schedule of a given size. */
// coldboot-lint: allow(wipe-coverage) -- synthetic test dump, planted keys are fixture data
struct VariantDump
{
    MemoryImage dump{KiB(128)};
    std::vector<MinedKey> keys;
    std::vector<uint8_t> master;
};

VariantDump
makeVariantDump(AesKeySize ks, uint64_t seed, uint64_t table_addr)
{
    VariantDump v;
    memctrl::Ddr4Scrambler scr(seed, 0);
    Xoshiro256StarStar rng(seed + 1);

    std::vector<uint8_t> plain(v.dump.size());
    for (size_t page = 0; page < plain.size() / 4096; ++page)
        if (!rng.chance(0.4))
            rng.fillBytes(
                std::span<uint8_t>(&plain[page * 4096], 4096));

    v.master.resize(static_cast<size_t>(ks));
    rng.fillBytes(v.master);
    auto sched = crypto::aesExpandKey(v.master);
    memcpy(&plain[table_addr], sched.data(), sched.size());

    auto bytes = v.dump.bytesMutable();
    for (uint64_t off = 0; off < plain.size(); off += 64)
        scr.apply(off, {&plain[off], 64}, bytes.subspan(off, 64));

    for (unsigned idx = 0; idx < 4096; ++idx) {
        MinedKey mk;
        scr.poolKey(idx, mk.key.data());
        mk.occurrences = 2;
        mk.first_offset = 0;
        v.keys.push_back(mk);
    }
    return v;
}

/** Parameterized search across all AES variants. */
class VariantSearch : public ::testing::TestWithParam<AesKeySize>
{
};

TEST_P(VariantSearch, RecoversPlantedSchedule)
{
    AesKeySize ks = GetParam();
    auto v = makeVariantDump(ks, 300 + static_cast<uint64_t>(ks),
                             KiB(64) + 16);
    SearchParams params;
    params.key_size = ks;
    auto found = searchAesKeyTables(v.dump, v.keys, params);
    ASSERT_GE(found.size(), 1u) << "key size "
                                << static_cast<size_t>(ks);
    EXPECT_EQ(found[0].master, v.master);
    EXPECT_EQ(found[0].key_size, ks);
}

INSTANTIATE_TEST_SUITE_P(AllKeySizes, VariantSearch,
                         ::testing::Values(AesKeySize::Aes128,
                                           AesKeySize::Aes192,
                                           AesKeySize::Aes256));

TEST(AttackModel, CrossGenerationDumpDefeatsMining)
{
    // Attack-model requirement: the dumping machine must be the same
    // generation. A SandyBridge (DDR3-scrambler) attacker machine
    // XORs its own keystream into the dump; DDR3 keys violate the
    // DDR4 invariants, so mining collapses.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 401);
    victim.installDimm(0, ddr4(MiB(2), 402));
    victim.boot();
    platform::fillWorkload(victim, {}, 403);
    auto vf = volume::VolumeFile::create("pw", 8, 404);
    auto mounted =
        volume::MountedVolume::mount(victim, vf, "pw", MiB(1) + 16);
    ASSERT_TRUE(mounted);

    Machine attacker(cpuModelByName("i5-2540M"), BiosConfig{}, 1,
                     405);
    auto cold = platform::coldBootTransfer(victim, attacker, 0);

    auto report = runColdBootAttack(cold.dump, {});
    EXPECT_TRUE(report.xts_pairs.empty());
}

TEST(ParallelScan, ThreadedSearchMatchesSerial)
{
    auto v = makeVariantDump(AesKeySize::Aes256, 500, KiB(96));
    SearchParams serial;
    SearchParams threaded;
    threaded.threads = 4;
    auto a = searchAesKeyTables(v.dump, v.keys, serial);
    auto b = searchAesKeyTables(v.dump, v.keys, threaded);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].master, b[i].master);
        EXPECT_EQ(a[i].table_offset, b[i].table_offset);
    }
}

TEST(LazyBios, ScramblerKeysSurviveReboot)
{
    // Paper observation: some vendor BIOSes do not reset the seed,
    // so the same scrambler keys come back after reboot.
    BiosConfig bios;
    bios.reset_seed_each_boot = false;
    bios.boot_pollution_bytes = 0;
    Machine m(cpuModelByName("i5-6400"), bios, 1, 601);
    m.installDimm(0, ddr4(MiB(1), 602));
    m.boot();
    uint8_t k1[64], k2[64];
    m.controller().scrambler(0).lineKey(0x4000, k1);
    m.reboot();
    m.controller().scrambler(0).lineKey(0x4000, k2);
    EXPECT_EQ(0, memcmp(k1, k2, 64));
}

TEST(FailureInjection, MissingKeysMeanNoRecovery)
{
    // Remove the scrambler keys covering the table's own blocks from
    // the candidate set: reconstruction must fail cleanly rather
    // than fabricate a key.
    auto v = makeVariantDump(AesKeySize::Aes256, 700, KiB(64));
    memctrl::Ddr4Scrambler scr(700, 0);
    std::vector<std::array<uint8_t, 64>> table_keys;
    for (uint64_t b = KiB(64) & ~63ULL; b < KiB(64) + 240; b += 64) {
        std::array<uint8_t, 64> key;
        scr.poolKey(memctrl::Ddr4Scrambler::keyIndex(b), key.data());
        table_keys.push_back(key);
    }
    std::vector<MinedKey> pruned;
    for (const auto &mk : v.keys) {
        bool is_table_key = false;
        for (const auto &key : table_keys)
            is_table_key = is_table_key ||
                           !memcmp(mk.key.data(), key.data(), 64);
        if (!is_table_key)
            pruned.push_back(mk);
    }
    ASSERT_LT(pruned.size(), v.keys.size());
    auto found = searchAesKeyTables(v.dump, pruned, {});
    EXPECT_TRUE(found.empty());
}

TEST(FailureInjection, EmptyCandidateListIsHarmless)
{
    auto v = makeVariantDump(AesKeySize::Aes256, 800, KiB(64));
    auto found = searchAesKeyTables(v.dump, {}, {});
    EXPECT_TRUE(found.empty());
}

TEST(FailureInjection, ReconstructionCapRespected)
{
    auto v = makeVariantDump(AesKeySize::Aes256, 900, KiB(64));
    SearchParams params;
    params.max_reconstructions = 1;
    SearchStats stats;
    searchAesKeyTables(v.dump, v.keys, params, &stats);
    EXPECT_LE(stats.reconstructions_tried, 1u);
}

TEST(Scrambler, ApplyTwiceIsIdentity)
{
    // Property: scramble == descramble (XOR keystream).
    memctrl::Ddr4Scrambler scr(1001, 0);
    Xoshiro256StarStar rng(1002);
    for (int trial = 0; trial < 50; ++trial) {
        uint8_t data[64], once[64], twice[64];
        std::span<uint8_t> span(data, 64);
        rng.fillBytes(span);
        uint64_t addr = (rng.nextBelow(1 << 20)) << 6;
        scr.apply(addr, {data, 64}, {once, 64});
        scr.apply(addr, {once, 64}, {twice, 64});
        ASSERT_EQ(0, memcmp(data, twice, 64));
    }
}

TEST(Pipeline, ReportsThroughput)
{
    MemoryImage dump(MiB(1));
    Xoshiro256StarStar rng(1100);
    rng.fillBytes(dump.bytesMutable());
    auto report = runColdBootAttack(dump, {});
    EXPECT_GT(report.mib_per_second, 0.0);
    EXPECT_EQ(report.miner_stats.blocks_scanned, MiB(1) / 64);
}

} // anonymous namespace
} // namespace coldboot::attack
