/**
 * @file
 * AES tests: FIPS-197 known-answer vectors for all key sizes, key
 * expansion vectors, schedule-continuation (the attack primitive),
 * and parameterized encrypt/decrypt round-trip properties.
 */

#include <gtest/gtest.h>

#include <array>
#include <span>
#include <vector>

#include "common/hex.hh"
#include "common/rng.hh"
#include "crypto/aes.hh"

namespace coldboot::crypto
{
namespace
{

// FIPS-197 Appendix C example vectors: common plaintext, per-size key.
const char *fipsPlain = "00112233445566778899aabbccddeeff";

struct FipsVector
{
    const char *key;
    const char *cipher;
};

const FipsVector fipsVectors[] = {
    // C.1 AES-128
    {"000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"},
    // C.2 AES-192
    {"000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"},
    // C.3 AES-256
    {"000102030405060708090a0b0c0d0e0f"
     "101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"},
};

TEST(Aes, FipsKnownAnswer)
{
    auto pt = fromHex(fipsPlain);
    for (const auto &v : fipsVectors) {
        Aes aes(fromHex(v.key));
        uint8_t ct[16];
        aes.encryptBlock(pt.data(), ct);
        EXPECT_EQ(toHex({ct, 16}), v.cipher);

        uint8_t back[16];
        aes.decryptBlock(ct, back);
        EXPECT_EQ(toHex({back, 16}), fipsPlain);
    }
}

TEST(Aes, SboxProperties)
{
    // S-box known anchor values from FIPS-197 Figure 7.
    EXPECT_EQ(aesSbox(0x00), 0x63);
    EXPECT_EQ(aesSbox(0x53), 0xed);
    EXPECT_EQ(aesSbox(0xff), 0x16);
    // Inverse property over the whole domain.
    for (int i = 0; i < 256; ++i) {
        uint8_t b = static_cast<uint8_t>(i);
        EXPECT_EQ(aesInvSbox(aesSbox(b)), b);
    }
}

TEST(Aes, KeyExpansion128KnownVector)
{
    // FIPS-197 Appendix A.1: key 2b7e1516 28aed2a6 abf71588 09cf4f3c.
    auto key = fromHex("2b7e151628aed2a6abf7158809cf4f3c");
    auto sched = aesExpandKey(key);
    ASSERT_EQ(sched.size(), 176u);
    // w4..w7 (round key 1).
    EXPECT_EQ(toHex({&sched[16], 16}),
              "a0fafe1788542cb123a339392a6c7605");
    // w40..w43 (round key 10).
    EXPECT_EQ(toHex({&sched[160], 16}),
              "d014f9a8c9ee2589e13f0cc8b6630ca6");
}

TEST(Aes, KeyExpansion256KnownVector)
{
    // FIPS-197 Appendix A.3.
    auto key = fromHex(
        "603deb1015ca71be2b73aef0857d7781"
        "1f352c073b6108d72d9810a30914dff4");
    auto sched = aesExpandKey(key);
    ASSERT_EQ(sched.size(), 240u);
    // w8..w11.
    EXPECT_EQ(toHex({&sched[32], 16}),
              "9ba354118e6925afa51a8b5f2067fcde");
    // FIPS-197 C.3 cipher trace: round[14].k_sch for the appendix-C
    // key is another independent anchor on the schedule tail.
    auto key_c3 = fromHex(
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f");
    auto sched_c3 = aesExpandKey(key_c3);
    EXPECT_EQ(toHex({&sched_c3[224], 16}),
              "24fc79ccbf0979e9371ac23c6d68de36");
}

TEST(Aes, KeyExpansion192KnownVector)
{
    // FIPS-197 Appendix A.2.
    auto key = fromHex(
        "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b");
    auto sched = aesExpandKey(key);
    ASSERT_EQ(sched.size(), 208u);
    // w6..w9 (hand-computed from the FIPS-197 A.2 recurrence).
    EXPECT_EQ(toHex({&sched[24], 16}),
              "fe0c91f72402f5a5ec12068e6c827f6b");
}

TEST(Aes, ScheduleContinueReproducesExpansion)
{
    // Sliding any Nk-word window of a real schedule through
    // aesScheduleContinue must regenerate the remainder exactly.
    Xoshiro256StarStar rng(77);
    for (size_t key_len : {16u, 24u, 32u}) {
        std::vector<uint8_t> key(key_len);
        rng.fillBytes(key);
        auto sched = aesExpandKey(key);
        unsigned nk = static_cast<unsigned>(key_len) / 4;
        unsigned total = static_cast<unsigned>(sched.size()) / 4;

        std::vector<uint32_t> words(total);
        for (unsigned i = 0; i < total; ++i)
            words[i] = aesWordFromBytes(&sched[4 * i]);

        for (unsigned start = nk; start + 1 <= total; start += 3) {
            std::span<const uint32_t> window(&words[start - nk], nk);
            unsigned count = total - start;
            auto cont = aesScheduleContinue(window, start, count, nk);
            for (unsigned k = 0; k < count; ++k)
                ASSERT_EQ(cont[k], words[start + k])
                    << "key_len=" << key_len << " start=" << start
                    << " k=" << k;
        }
    }
}

TEST(Aes, ScheduleContinueWrongIndexDiverges)
{
    // Using the wrong absolute index (wrong Rcon phase) must not
    // reproduce the true schedule - this is what lets the attack
    // detect the correct round alignment.
    auto key = fromHex(
        "603deb1015ca71be2b73aef0857d7781"
        "1f352c073b6108d72d9810a30914dff4");
    auto sched = aesExpandKey(key);
    unsigned nk = 8;
    std::vector<uint32_t> words(sched.size() / 4);
    for (unsigned i = 0; i < words.size(); ++i)
        words[i] = aesWordFromBytes(&sched[4 * i]);

    std::span<const uint32_t> window(&words[8], nk); // w8..w15
    // Correct continuation index is 16; try 24 (wrong Rcon).
    auto wrong = aesScheduleContinue(window, 24, 8, nk);
    bool all_match = true;
    for (unsigned k = 0; k < 8; ++k)
        all_match = all_match && (wrong[k] == words[16 + k]);
    EXPECT_FALSE(all_match);
}

TEST(Aes, EncryptDecryptAliasSafe)
{
    auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    Aes aes(key);
    auto pt = fromHex(fipsPlain);
    std::vector<uint8_t> buf = pt;
    aes.encryptBlock(buf.data(), buf.data());
    EXPECT_NE(buf, pt);
    aes.decryptBlock(buf.data(), buf.data());
    EXPECT_EQ(buf, pt);
}

TEST(Aes, ScheduleAccessors)
{
    auto key = fromHex(
        "603deb1015ca71be2b73aef0857d7781"
        "1f352c073b6108d72d9810a30914dff4");
    Aes aes(key);
    EXPECT_EQ(aes.keySize(), AesKeySize::Aes256);
    EXPECT_EQ(aes.rounds(), 14);
    EXPECT_EQ(aes.schedule().size(), 240u);
    // First Nk words of the schedule are the raw key.
    EXPECT_EQ(toHex(aes.schedule().subspan(0, 32)), toHex(key));
}

/** Parameterized round-trip sweep across key sizes and random data. */
class AesRoundTrip : public ::testing::TestWithParam<size_t>
{
};

TEST_P(AesRoundTrip, ManyRandomBlocks)
{
    size_t key_len = GetParam();
    Xoshiro256StarStar rng(key_len * 1000 + 17);
    std::vector<uint8_t> key(key_len);
    rng.fillBytes(key);
    Aes aes(key);

    for (int i = 0; i < 200; ++i) {
        uint8_t pt[16], ct[16], back[16];
        std::span<uint8_t> pt_span(pt, 16);
        rng.fillBytes(pt_span);
        aes.encryptBlock(pt, ct);
        aes.decryptBlock(ct, back);
        ASSERT_EQ(0, memcmp(pt, back, 16));
        // Ciphertext differs from plaintext (overwhelming probability).
        ASSERT_NE(0, memcmp(pt, ct, 16));
    }
}

INSTANTIATE_TEST_SUITE_P(AllKeySizes, AesRoundTrip,
                         ::testing::Values(16u, 24u, 32u));

/** Avalanche property: one flipped key bit changes ~half the output. */
TEST(Aes, KeyAvalanche)
{
    auto key = fromHex(
        "603deb1015ca71be2b73aef0857d7781"
        "1f352c073b6108d72d9810a30914dff4");
    auto pt = fromHex(fipsPlain);
    Aes aes1(key);
    auto key2 = key;
    key2[0] ^= 0x01;
    Aes aes2(key2);
    uint8_t c1[16], c2[16];
    aes1.encryptBlock(pt.data(), c1);
    aes2.encryptBlock(pt.data(), c2);
    int diff = 0;
    for (int i = 0; i < 16; ++i)
        diff += __builtin_popcount(
            static_cast<unsigned>(c1[i] ^ c2[i]));
    EXPECT_GT(diff, 40);
    EXPECT_LT(diff, 88);
}

} // anonymous namespace
} // namespace coldboot::crypto

#include "crypto/aes_ttable.hh"

namespace coldboot::crypto
{
namespace
{

TEST(FastAes, MatchesReferenceOnFipsVectors)
{
    auto pt = fromHex(fipsPlain);
    for (const auto &v : fipsVectors) {
        FastAes fast(fromHex(v.key));
        uint8_t ct[16];
        fast.encryptBlock(pt.data(), ct);
        EXPECT_EQ(toHex({ct, 16}), v.cipher);
    }
}

TEST(FastAes, MatchesReferenceOnRandomData)
{
    Xoshiro256StarStar rng(8181);
    for (size_t key_len : {16u, 24u, 32u}) {
        std::vector<uint8_t> key(key_len);
        rng.fillBytes(key);
        Aes reference(key);
        FastAes fast(key);
        for (int trial = 0; trial < 500; ++trial) {
            uint8_t pt[16], a[16], b[16];
            std::span<uint8_t> pts(pt, 16);
            rng.fillBytes(pts);
            reference.encryptBlock(pt, a);
            fast.encryptBlock(pt, b);
            ASSERT_EQ(0, memcmp(a, b, 16))
                << "key_len " << key_len << " trial " << trial;
        }
    }
}

TEST(FastAes, AliasSafeAndScheduleShared)
{
    std::vector<uint8_t> key(32, 0x24);
    FastAes fast(key);
    Aes reference(key);
    EXPECT_EQ(0, memcmp(fast.schedule().data(),
                        reference.schedule().data(), 240));
    uint8_t buf[16] = {1, 2, 3};
    uint8_t expect[16];
    reference.encryptBlock(buf, expect);
    fast.encryptBlock(buf, buf);
    EXPECT_EQ(0, memcmp(buf, expect, 16));
}

TEST(Aes, Aes256ExpansionFromEveryLitmusPlacement)
{
    // The AES litmus slides a 64-byte (16-word) window over an
    // AES-256 schedule: 60 words give 12 possible 4-word-aligned
    // placements (word 4p for p in 0..11). From each placement the
    // known-answer FIPS-197 A.3 schedule must regenerate completely:
    // forward from the window's top Nk words to the schedule tail,
    // and backward from the window's base to the master key itself.
    auto key = fromHex(
        "603deb1015ca71be2b73aef0857d7781"
        "1f352c073b6108d72d9810a30914dff4");
    auto sched = aesExpandKey(key);
    ASSERT_EQ(sched.size(), 240u);
    constexpr unsigned nk = 8, total = 60;

    std::array<uint32_t, total> words;
    for (unsigned i = 0; i < total; ++i)
        words[i] = aesWordFromBytes(&sched[4 * i]);

    for (unsigned p = 0; p < 12; ++p) {
        unsigned base = 4 * p; // first word of the 16-word window
        ASSERT_LE(base + 16, total);

        // Forward: the window's last Nk words predict the rest.
        unsigned anchor = base + 16;
        if (anchor < total) {
            std::span<const uint32_t> top(&words[anchor - nk], nk);
            auto tail = aesScheduleContinue(top, anchor,
                                            total - anchor, nk);
            for (unsigned k = 0; k < tail.size(); ++k)
                ASSERT_EQ(tail[k], words[anchor + k])
                    << "placement " << p << " word " << anchor + k;
        }

        // Backward: the window's first Nk words recover the full
        // head, i.e. schedule words 0..base - including the master
        // key in words 0..7.
        if (base > 0) {
            std::span<const uint32_t> bottom(&words[base], nk);
            auto head = aesScheduleBackward(bottom, base, base, nk);
            ASSERT_EQ(head.size(), base);
            for (unsigned k = 0; k < base; ++k)
                ASSERT_EQ(head[k], words[k])
                    << "placement " << p << " word " << k;
        }

        // Either way the master key bytes fall out exactly.
        for (unsigned i = 0; i < 32; ++i)
            ASSERT_EQ(sched[i], key[i]);
    }
}

} // anonymous namespace
} // namespace coldboot::crypto
