/**
 * @file
 * XTS-AES tests: IEEE 1619 known-answer vector, sector independence,
 * round-trip properties, and CTR-mode line encryption tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/hex.hh"
#include "common/rng.hh"
#include "crypto/ctr.hh"
#include "crypto/xts.hh"

namespace coldboot::crypto
{
namespace
{

// IEEE 1619-2007 Vector 1: AES-128 keys of all zeros, data unit 0,
// 32 bytes of zero plaintext.
TEST(Xts, Ieee1619Vector1)
{
    std::vector<uint8_t> key1(16, 0), key2(16, 0);
    XtsAes xts(key1, key2);
    std::vector<uint8_t> pt(32, 0), ct(32);
    xts.encryptSector(0, pt, ct);
    EXPECT_EQ(toHex(ct),
              "917cf69ebd68b2ec9b9fe9a3eadda692"
              "cd43d2f59598ed858c02c2652fbf922e");
}

// IEEE 1619-2007 Vector 2: sector (data unit) number 0x3333333333.
TEST(Xts, Ieee1619Vector2)
{
    std::vector<uint8_t> key1(16, 0x11), key2(16, 0x22);
    XtsAes xts(key1, key2);
    std::vector<uint8_t> pt(32, 0x44), ct(32);
    xts.encryptSector(0x3333333333ULL, pt, ct);
    EXPECT_EQ(toHex(ct),
              "c454185e6a16936e39334038acef838b"
              "fb186fff7480adc4289382ecd6d394f0");
}

TEST(Xts, RoundTripRandomSectors)
{
    Xoshiro256StarStar rng(55);
    std::vector<uint8_t> key1(32), key2(32);
    rng.fillBytes(key1);
    rng.fillBytes(key2);
    XtsAes xts(key1, key2);

    for (uint64_t sector : {0ull, 1ull, 77ull, 1ull << 40}) {
        std::vector<uint8_t> pt(512), ct(512), back(512);
        rng.fillBytes(pt);
        xts.encryptSector(sector, pt, ct);
        EXPECT_NE(pt, ct);
        xts.decryptSector(sector, ct, back);
        EXPECT_EQ(pt, back);
    }
}

TEST(Xts, SectorNumberSeparates)
{
    std::vector<uint8_t> key1(32, 0xab), key2(32, 0xcd);
    XtsAes xts(key1, key2);
    std::vector<uint8_t> pt(64, 0), c0(64), c1(64);
    xts.encryptSector(0, pt, c0);
    xts.encryptSector(1, pt, c1);
    EXPECT_NE(c0, c1);
}

TEST(Xts, BlockPositionSeparatesWithinSector)
{
    // Equal plaintext blocks within a sector must encrypt differently
    // (tweak is multiplied by alpha per block).
    std::vector<uint8_t> key1(32, 0x01), key2(32, 0x02);
    XtsAes xts(key1, key2);
    std::vector<uint8_t> pt(64, 0x77), ct(64);
    xts.encryptSector(9, pt, ct);
    EXPECT_NE(0, memcmp(ct.data(), ct.data() + 16, 16));
    EXPECT_NE(0, memcmp(ct.data() + 16, ct.data() + 32, 16));
}

TEST(Xts, SchedulesExposedForAttackSimulation)
{
    std::vector<uint8_t> key1(32, 0x10), key2(32, 0x20);
    XtsAes xts(key1, key2);
    EXPECT_EQ(xts.dataCipher().schedule().size(), 240u);
    EXPECT_EQ(xts.tweakCipher().schedule().size(), 240u);
}

TEST(AesCtr, LineRoundTrip)
{
    Xoshiro256StarStar rng(66);
    std::vector<uint8_t> key(16), nonce(8);
    rng.fillBytes(key);
    rng.fillBytes(nonce);
    AesCtr ctr(key, nonce);

    std::vector<uint8_t> pt(64), ct(64), back(64);
    rng.fillBytes(pt);
    ctr.cryptLine(42, pt, ct);
    EXPECT_NE(pt, ct);
    ctr.cryptLine(42, ct, back);
    EXPECT_EQ(pt, back);
}

TEST(AesCtr, DistinctAddressesDistinctKeystreams)
{
    std::vector<uint8_t> key(16, 0x5a), nonce(8, 0xa5);
    AesCtr ctr(key, nonce);
    uint8_t k0[64], k1[64];
    ctr.lineKeystream(0, k0);
    ctr.lineKeystream(1, k1);
    EXPECT_NE(0, memcmp(k0, k1, 64));
}

TEST(AesCtr, KeystreamIsFourDistinctAesBlocks)
{
    // The 4x counter fan-out per line: all four 16-byte sub-blocks of
    // a line keystream must be distinct AES outputs.
    std::vector<uint8_t> key(16, 0x33), nonce(8, 0x44);
    AesCtr ctr(key, nonce);
    uint8_t ks[64];
    ctr.lineKeystream(1234, ks);
    for (int i = 0; i < 4; ++i)
        for (int j = i + 1; j < 4; ++j)
            EXPECT_NE(0, memcmp(&ks[16 * i], &ks[16 * j], 16));
}

TEST(AesCtr, DeterministicAcrossInstances)
{
    std::vector<uint8_t> key(32, 0x77), nonce(8, 0x88);
    AesCtr a(key, nonce), b(key, nonce);
    uint8_t ka[64], kb[64];
    a.lineKeystream(99, ka);
    b.lineKeystream(99, kb);
    EXPECT_EQ(0, memcmp(ka, kb, 64));
}

} // anonymous namespace
} // namespace coldboot::crypto
