/**
 * @file
 * Traffic generator and bandwidth measurement tests.
 */

#include <gtest/gtest.h>

#include "dram/timing.hh"
#include "dram/traffic.hh"

namespace coldboot::dram
{
namespace
{

BankTimingParams
params()
{
    return BankTimingParams::forGrade(ddr4_2400());
}

TEST(Traffic, GeneratorsAreDeterministic)
{
    for (auto pattern :
         {TrafficPattern::Streaming, TrafficPattern::Random,
          TrafficPattern::PointerChase}) {
        TrafficParams tp;
        tp.pattern = pattern;
        tp.requests = 256;
        auto a = generateTraffic(tp);
        auto b = generateTraffic(tp);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].bank, b[i].bank);
            EXPECT_EQ(a[i].row, b[i].row);
            EXPECT_EQ(a[i].arrival, b[i].arrival);
        }
    }
}

TEST(Traffic, ArrivalsMonotone)
{
    TrafficParams tp;
    tp.pattern = TrafficPattern::Random;
    auto stream = generateTraffic(tp);
    for (size_t i = 1; i < stream.size(); ++i)
        ASSERT_GE(stream[i].arrival, stream[i - 1].arrival);
}

TEST(Traffic, StreamingHasHighRowHitRate)
{
    TrafficParams tp;
    tp.pattern = TrafficPattern::Streaming;
    auto r = measureBandwidth(params(), generateTraffic(tp));
    EXPECT_GT(r.row_hit_rate, 0.9);
}

TEST(Traffic, RandomHasLowRowHitRate)
{
    TrafficParams tp;
    tp.pattern = TrafficPattern::Random;
    auto r = measureBandwidth(params(), generateTraffic(tp));
    EXPECT_LT(r.row_hit_rate, 0.2);
}

TEST(Traffic, UtilizationOrderingMatchesPaperStory)
{
    // Streaming > random > pointer chase; and even streaming stays
    // in the ~15-25% region the paper's 20% point represents.
    auto run = [&](TrafficPattern p) {
        TrafficParams tp;
        tp.pattern = p;
        return measureBandwidth(params(), generateTraffic(tp))
            .utilization;
    };
    double streaming = run(TrafficPattern::Streaming);
    double random = run(TrafficPattern::Random);
    double chase = run(TrafficPattern::PointerChase);
    EXPECT_GT(streaming, random);
    EXPECT_GT(random, chase);
    EXPECT_GT(streaming, 0.10);
    EXPECT_LT(streaming, 0.35);
    EXPECT_LT(chase, 0.10);
}

TEST(Traffic, PeakBandwidthMatchesGrade)
{
    // DDR4-2400 peak: 64 B per 4 bus clocks at 1.2 GHz = 19.2 GB/s.
    TrafficParams tp;
    auto r = measureBandwidth(params(), generateTraffic(tp));
    EXPECT_NEAR(r.peak_gbs, 19.2, 0.1);
}

TEST(Traffic, SaturatingStreamApproachesPeak)
{
    // Zero think time, perfect locality: the data bus is the limit.
    TrafficParams tp;
    tp.pattern = TrafficPattern::Streaming;
    tp.think_cycles = 1;
    auto r = measureBandwidth(params(), generateTraffic(tp));
    EXPECT_GT(r.utilization, 0.85);
}

TEST(Traffic, UtilizationDropsWithThinkTime)
{
    TrafficParams fast, slow;
    fast.pattern = slow.pattern = TrafficPattern::Streaming;
    fast.think_cycles = 4;
    slow.think_cycles = 64;
    auto rf = measureBandwidth(params(), generateTraffic(fast));
    auto rs = measureBandwidth(params(), generateTraffic(slow));
    EXPECT_GT(rf.utilization, 2.0 * rs.utilization);
}

} // anonymous namespace
} // namespace coldboot::dram
