/**
 * @file
 * Pure-ctest smoke test for the unified benchmark harness and the
 * perf-regression gate (no Python, no third-party JSON):
 *
 *  - `coldboot-bench --profile smoke --out` must run every registered
 *    bench and emit schema-valid BENCH.json (validated with the
 *    in-tree parser against `coldboot-bench --list`), creating
 *    missing parent directories for the output;
 *  - `bench_compare --self` on that file must exit 0;
 *  - an injected over-threshold slowdown must make bench_compare exit
 *    nonzero, as must a bench missing from the candidate;
 *  - mismatched schema versions must be refused;
 *  - `coldboot-tool --stats-json` must create missing parent
 *    directories, and report a clear error (nonzero exit) on an
 *    unwritable path.
 *
 * Usage: smoke_bench_json <coldboot-bench> <bench_compare>
 *                         <coldboot-tool>
 */

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "obs/json.hh"

using coldboot::obs::json::Value;

namespace
{

int failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what.c_str());
        ++failures;
    } else {
        std::printf("ok: %s\n", what.c_str());
    }
}

/** Run a shell command, return its exit status (-1 on launch error). */
int
run(const std::string &cmd)
{
    std::printf("+ %s\n", cmd.c_str());
    std::fflush(stdout);
    int rc = std::system(cmd.c_str());
    if (rc == -1 || !WIFEXITED(rc))
        return -1;
    return WEXITSTATUS(rc);
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(2);
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
}

/** Minimal schema-conforming BENCH.json for bench_compare tests. */
std::string
miniBenchJson(int schema, double fast_median, double slow_median,
              bool include_second)
{
    std::string out = "{\"schema_version\": " +
                      std::to_string(schema) +
                      ", \"benches\": [";
    out += "{\"name\": \"alpha\", \"wall_ns\": {\"median\": " +
           std::to_string(fast_median) + ", \"mad\": 1000.0}}";
    if (include_second)
        out += ", {\"name\": \"beta\", \"wall_ns\": {\"median\": " +
               std::to_string(slow_median) + ", \"mad\": 1000.0}}";
    out += "]}";
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: smoke_bench_json <coldboot-bench> "
                     "<bench_compare> <coldboot-tool>\n");
        return 2;
    }
    std::string bench = argv[1];
    std::string compare = argv[2];
    std::string tool = argv[3];

    // --- the smoke run itself, with a nested output path ---
    std::string out_path = "smoke_bench_out/nested/BENCH.json";
    int rc = run("\"" + bench +
                 "\" --profile smoke --quiet --out \"" + out_path +
                 "\" > smoke_bench_stdout.txt 2>&1");
    check(rc == 0, "coldboot-bench --profile smoke exits 0");

    // Every registered bench must appear in the document.
    std::set<std::string> registered;
    {
        rc = run("\"" + bench + "\" --list > smoke_bench_list.txt");
        check(rc == 0, "coldboot-bench --list exits 0");
        std::FILE *f = std::fopen("smoke_bench_list.txt", "r");
        char line[256];
        while (f && std::fgets(line, sizeof(line), f)) {
            std::string name = line;
            while (!name.empty() &&
                   (name.back() == '\n' || name.back() == '\r'))
                name.pop_back();
            if (!name.empty())
                registered.insert(name);
        }
        if (f)
            std::fclose(f);
    }
    check(registered.size() >= 12,
          "at least 12 benches are registered (have " +
              std::to_string(registered.size()) + ")");

    auto doc = coldboot::obs::json::parseFile(out_path);
    check(doc.has_value(),
          "BENCH.json written through a missing directory and "
          "parses");
    if (doc) {
        const Value *schema = doc->find("schema_version");
        check(schema && schema->isNumber() && schema->number == 1,
              "schema_version is 1");
        const Value *profile = doc->find("profile");
        check(profile && profile->str == "smoke",
              "profile recorded as smoke");
        const Value *env = doc->find("environment");
        check(env != nullptr, "environment fingerprint present");
        for (const char *key : {"compiler", "build_type",
                                "cxx_flags", "cpu", "os", "git_sha"})
            check(env && env->find(key) != nullptr,
                  std::string("environment.") + key);

        const Value *benches = doc->find("benches");
        check(benches && benches->isArray(), "benches array present");
        std::set<std::string> emitted;
        if (benches) {
            for (const auto &b : benches->array) {
                const Value *name = b.find("name");
                if (name)
                    emitted.insert(name->str);
                const Value *wall = b.find("wall_ns");
                check(wall && wall->find("median") &&
                          wall->find("mad") && wall->find("ci95_lo") &&
                          wall->find("ci95_hi"),
                      (name ? name->str : "?") +
                          ": wall_ns statistics complete");
                const Value *counters = b.find("counters");
                const Value *available =
                    counters ? counters->find("available") : nullptr;
                bool counters_ok =
                    available && available->isBool() &&
                    (available->boolean ||
                     (counters->find("reason") &&
                      !counters->find("reason")->str.empty()));
                check(counters_ok,
                      (name ? name->str : "?") +
                          ": counters available or fallback carries "
                          "a reason");
                const Value *rss = b.find("max_rss_kib");
                check(rss && rss->isNumber() && rss->number > 0,
                      (name ? name->str : "?") + ": max_rss_kib > 0");
            }
        }
        for (const auto &name : registered)
            check(emitted.count(name) == 1,
                  "bench '" + name + "' present in BENCH.json");
    }

    // --- the regression gate ---
    rc = run("\"" + compare + "\" --self \"" + out_path + "\"");
    check(rc == 0, "bench_compare --self exits 0");

    writeFile("smoke_cmp_base.json",
              miniBenchJson(1, 1e6, 1e6, true));
    writeFile("smoke_cmp_same.json",
              miniBenchJson(1, 1e6, 1e6, true));
    // beta slows 1e6 -> 2e6 ns: 100% > 30% threshold and 1e6 ns
    // above the max(100us, 3 MAD) noise floor.
    writeFile("smoke_cmp_slow.json",
              miniBenchJson(1, 1e6, 2e6, true));
    writeFile("smoke_cmp_missing.json",
              miniBenchJson(1, 1e6, 0.0, false));
    writeFile("smoke_cmp_schema2.json",
              miniBenchJson(2, 1e6, 1e6, true));

    rc = run("\"" + compare +
             "\" smoke_cmp_base.json smoke_cmp_same.json");
    check(rc == 0, "identical candidate passes the gate");
    rc = run("\"" + compare +
             "\" smoke_cmp_base.json smoke_cmp_slow.json");
    check(rc == 1, "injected 2x slowdown fails the gate (exit 1)");
    rc = run("\"" + compare +
             "\" smoke_cmp_base.json smoke_cmp_missing.json");
    check(rc == 1, "bench missing from candidate fails the gate");
    rc = run("\"" + compare +
             "\" smoke_cmp_base.json smoke_cmp_schema2.json");
    check(rc == 2, "schema version mismatch is refused (exit 2)");
    // A slowdown inside the noise floor must pass: +50% relative but
    // only 40 us absolute, under the 100 us floor.
    writeFile("smoke_cmp_tiny_base.json",
              miniBenchJson(1, 8e4, 8e4, false));
    writeFile("smoke_cmp_tiny_slow.json",
              miniBenchJson(1, 12e4, 12e4, false));
    rc = run("\"" + compare +
             "\" smoke_cmp_tiny_base.json smoke_cmp_tiny_slow.json");
    check(rc == 0, "sub-noise-floor slowdown passes the gate");

    // --- coldboot-tool output path handling ---
    writeFile("smoke_tiny_dump.img", std::string(4096, '\xa5'));
    rc = run("\"" + tool + "\" info smoke_tiny_dump.img "
             "--stats-json smoke_tool_out/deep/stats.json "
             "--trace smoke_tool_out/deep/trace.json "
             "> /dev/null");
    check(rc == 0,
          "coldboot-tool exits 0 with nested output paths");
    check(coldboot::obs::json::parseFile(
              "smoke_tool_out/deep/stats.json")
              .has_value(),
          "stats JSON created through missing directories");
    check(coldboot::obs::json::parseFile(
              "smoke_tool_out/deep/trace.json")
              .has_value(),
          "trace JSON created through missing directories");

    writeFile("smoke_tool_notadir", "plain file");
    rc = run("\"" + tool + "\" info smoke_tiny_dump.img "
             "--stats-json smoke_tool_notadir/stats.json "
             "> /dev/null 2> smoke_tool_err.txt");
    check(rc != 0,
          "unwritable stats path exits nonzero");
    {
        std::FILE *f = std::fopen("smoke_tool_err.txt", "r");
        std::string err;
        char buf[512];
        size_t got;
        while (f && (got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            err.append(buf, got);
        if (f)
            std::fclose(f);
        check(err.find("smoke_tool_notadir") != std::string::npos,
              "error message names the unwritable path");
    }

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("smoke_bench_json: all checks passed\n");
    return 0;
}
