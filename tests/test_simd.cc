/**
 * @file
 * Differential tests for the SIMD kernel layer (DESIGN.md §15).
 *
 * The scalar backend is the oracle: every compiled-and-usable vector
 * backend must return bit-identical results on every input. The
 * sweeps below cover all tail lengths 0–192 (three vector widths
 * past the 64-byte block), every unaligned source/destination offset
 * 1–63, and randomized large buffers. Buffers are heap-allocated at
 * their exact logical size so the ASan CI leg turns any past-the-end
 * read into a hard failure — the tail-handling hazard class this
 * layer was built to retire.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "common/bits.hh"
#include "common/rng.hh"
#include "simd/simd.hh"

namespace coldboot
{
namespace
{

/** Backends usable on this host (scalar always; others by CPUID). */
std::vector<simd::Backend>
usableBackends()
{
    std::vector<simd::Backend> out;
    for (unsigned i = 0; i < simd::kBackendCount; ++i) {
        auto b = static_cast<simd::Backend>(i);
        if (simd::backendUsable(b))
            out.push_back(b);
    }
    return out;
}

/** Exact-size heap buffer: ASan red-zones begin at data()[n]. */
struct ExactBuf
{
    std::unique_ptr<uint8_t[]> mem;
    size_t len;

    explicit ExactBuf(size_t n)
        : mem(std::make_unique<uint8_t[]>(n)), len(n)
    {
    }

    uint8_t *data() { return mem.get(); }
    const uint8_t *data() const { return mem.get(); }
};

void
fill(Xoshiro256StarStar &rng, uint8_t *p, size_t n)
{
    rng.fillBytes({p, n});
}

//
// Naive references, written independently of src/simd (per-byte /
// per-bit only) so even the scalar oracle is cross-checked.
//

size_t
naiveDistance(const uint8_t *a, const uint8_t *b, size_t n)
{
    size_t d = 0;
    for (size_t i = 0; i < n; ++i)
        d += static_cast<size_t>(
            std::popcount(static_cast<unsigned>(a[i] ^ b[i])));
    return d;
}

unsigned
naiveLitmus(const uint8_t *block)
{
    auto w = [&](unsigned off) {
        return static_cast<unsigned>(block[off] |
                                     (block[off + 1] << 8));
    };
    unsigned errors = 0;
    for (unsigned base = 0; base < 64; base += 16) {
        errors += static_cast<unsigned>(std::popcount(
            (w(base + 2) ^ w(base + 4)) ^ (w(base + 10) ^ w(base + 12))));
        errors += static_cast<unsigned>(std::popcount(
            (w(base + 0) ^ w(base + 6)) ^ (w(base + 8) ^ w(base + 14))));
        errors += static_cast<unsigned>(std::popcount(
            (w(base + 0) ^ w(base + 4)) ^ (w(base + 8) ^ w(base + 12))));
        errors += static_cast<unsigned>(std::popcount(
            (w(base + 0) ^ w(base + 2)) ^ (w(base + 8) ^ w(base + 10))));
    }
    return errors;
}

//
// Exhaustive tail sweep: every length 0..192, every usable backend.
//

TEST(SimdKernels, ExhaustiveLengthSweepMatchesScalar)
{
    const auto &scalar = simd::kernels(simd::Backend::Scalar);
    auto backends = usableBackends();
    Xoshiro256StarStar rng(0x51D0);

    for (size_t n = 0; n <= 192; ++n) {
        ExactBuf a(n), b(n), mask(n);
        fill(rng, a.data(), n);
        fill(rng, b.data(), n);
        fill(rng, mask.data(), n);

        size_t ref_dist = scalar.hamming_distance(a.data(), b.data(), n);
        size_t ref_weight = scalar.hamming_weight(a.data(), n);
        size_t ref_masked =
            scalar.masked_mismatch(a.data(), b.data(), mask.data(), n);
        EXPECT_EQ(ref_dist, naiveDistance(a.data(), b.data(), n));

        ExactBuf ref_xor(n), ref_into(n);
        std::memcpy(ref_xor.data(), a.data(), n);
        scalar.xor_bytes(ref_xor.data(), b.data(), n);
        scalar.xor_into(ref_into.data(), a.data(), b.data(), n);

        for (auto be : backends) {
            const auto &k = simd::kernels(be);
            const char *name = simd::backendName(be);
            EXPECT_EQ(k.hamming_distance(a.data(), b.data(), n),
                      ref_dist)
                << name << " n=" << n;
            EXPECT_EQ(k.hamming_weight(a.data(), n), ref_weight)
                << name << " n=" << n;
            EXPECT_EQ(k.masked_mismatch(a.data(), b.data(),
                                        mask.data(), n),
                      ref_masked)
                << name << " n=" << n;

            ExactBuf x(n);
            std::memcpy(x.data(), a.data(), n);
            k.xor_bytes(x.data(), b.data(), n);
            EXPECT_EQ(std::memcmp(x.data(), ref_xor.data(), n), 0)
                << name << " n=" << n;

            ExactBuf into(n);
            k.xor_into(into.data(), a.data(), b.data(), n);
            EXPECT_EQ(std::memcmp(into.data(), ref_into.data(), n), 0)
                << name << " n=" << n;
        }
    }
}

TEST(SimdKernels, XorRepeatKey64AllTailLengths)
{
    auto backends = usableBackends();
    const auto &scalar = simd::kernels(simd::Backend::Scalar);
    Xoshiro256StarStar rng(0x2EED);
    uint8_t key[64];
    fill(rng, key, 64);

    for (size_t n = 0; n <= 192; ++n) {
        ExactBuf src(n);
        fill(rng, src.data(), n);

        ExactBuf ref(n);
        std::memcpy(ref.data(), src.data(), n);
        scalar.xor_repeat_key64(ref.data(), key, n);
        // Per-byte truth: dst[i] ^= key[i % 64].
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(ref.data()[i],
                      static_cast<uint8_t>(src.data()[i] ^
                                           key[i % 64]));

        for (auto be : backends) {
            ExactBuf x(n);
            std::memcpy(x.data(), src.data(), n);
            simd::kernels(be).xor_repeat_key64(x.data(), key, n);
            EXPECT_EQ(std::memcmp(x.data(), ref.data(), n), 0)
                << simd::backendName(be) << " n=" << n;
        }
    }
}

TEST(SimdKernels, UnalignedOffsets1To63)
{
    auto backends = usableBackends();
    const auto &scalar = simd::kernels(simd::Backend::Scalar);
    Xoshiro256StarStar rng(0xA116);

    // Lengths that leave every kind of tail behind a 64-byte body.
    for (size_t n : {64u, 65u, 96u, 127u, 130u}) {
        for (size_t off = 1; off < 64; ++off) {
            // Exact allocations: the logical range ends flush with
            // the heap block, so any overread trips ASan.
            ExactBuf a(off + n), b(off + n);
            fill(rng, a.data(), off + n);
            fill(rng, b.data(), off + n);
            const uint8_t *ap = a.data() + off;
            uint8_t *bp = b.data() + off;

            size_t ref_dist = scalar.hamming_distance(ap, bp, n);
            ExactBuf ref(off + n);
            std::memcpy(ref.data(), b.data(), off + n);
            scalar.xor_bytes(ref.data() + off, ap, n);

            for (auto be : backends) {
                const auto &k = simd::kernels(be);
                EXPECT_EQ(k.hamming_distance(ap, bp, n), ref_dist)
                    << simd::backendName(be) << " off=" << off
                    << " n=" << n;
                ExactBuf x(off + n);
                std::memcpy(x.data(), b.data(), off + n);
                k.xor_bytes(x.data() + off, ap, n);
                EXPECT_EQ(std::memcmp(x.data() + off,
                                      ref.data() + off, n),
                          0)
                    << simd::backendName(be) << " off=" << off
                    << " n=" << n;
            }
        }
    }
}

TEST(SimdKernels, RandomizedLargeBuffers)
{
    auto backends = usableBackends();
    const auto &scalar = simd::kernels(simd::Backend::Scalar);
    Xoshiro256StarStar rng(0xB16B);

    for (size_t n : {4096u, 65536u + 1u, 100003u}) {
        ExactBuf a(n), b(n), mask(n);
        fill(rng, a.data(), n);
        fill(rng, b.data(), n);
        fill(rng, mask.data(), n);

        size_t ref_dist = scalar.hamming_distance(a.data(), b.data(), n);
        size_t ref_weight = scalar.hamming_weight(a.data(), n);
        size_t ref_masked =
            scalar.masked_mismatch(a.data(), b.data(), mask.data(), n);

        for (auto be : backends) {
            const auto &k = simd::kernels(be);
            EXPECT_EQ(k.hamming_distance(a.data(), b.data(), n),
                      ref_dist)
                << simd::backendName(be);
            EXPECT_EQ(k.hamming_weight(a.data(), n), ref_weight)
                << simd::backendName(be);
            EXPECT_EQ(k.masked_mismatch(a.data(), b.data(),
                                        mask.data(), n),
                      ref_masked)
                << simd::backendName(be);
        }
    }
}

TEST(SimdKernels, BoundedDistanceIsExactMinOnEveryBackend)
{
    auto backends = usableBackends();
    Xoshiro256StarStar rng(0xB07D);

    for (size_t n : {0u, 1u, 7u, 64u, 100u, 4096u, 8200u}) {
        ExactBuf a(n), b(n);
        fill(rng, a.data(), n);
        fill(rng, b.data(), n);
        size_t full = naiveDistance(a.data(), b.data(), n);

        std::vector<size_t> limits{0, 1, full / 2, full, full + 1,
                                   full + 1000};
        if (full > 0)
            limits.push_back(full - 1);
        for (size_t limit : limits) {
            size_t want = full <= limit ? full : limit + 1;
            for (auto be : backends) {
                EXPECT_EQ(simd::kernels(be).hamming_bounded(
                              a.data(), b.data(), n, limit),
                          want)
                    << simd::backendName(be) << " n=" << n
                    << " limit=" << limit;
            }
        }
    }
}

TEST(SimdKernels, IsConstantFlagsEveryMismatchPosition)
{
    auto backends = usableBackends();
    for (auto be : backends) {
        const auto &k = simd::kernels(be);
        EXPECT_TRUE(k.is_constant(nullptr, 0))
            << simd::backendName(be);
        for (size_t n : {1u, 2u, 15u, 16u, 17u, 63u, 64u, 65u, 192u}) {
            ExactBuf buf(n);
            std::memset(buf.data(), 0xA5, n);
            EXPECT_TRUE(k.is_constant(buf.data(), n))
                << simd::backendName(be) << " n=" << n;
            for (size_t pos = 0; pos < n; ++pos) {
                buf.data()[pos] ^= 0x10;
                // A mismatch at position 0 redefines the reference
                // byte, so every later byte disagrees; either way the
                // block is non-constant.
                EXPECT_EQ(k.is_constant(buf.data(), n), n == 1)
                    << simd::backendName(be) << " n=" << n
                    << " pos=" << pos;
                buf.data()[pos] ^= 0x10;
            }
        }
    }
}

TEST(SimdKernels, LitmusScoreMatchesNaiveTranscription)
{
    auto backends = usableBackends();
    Xoshiro256StarStar rng(0x117);

    for (unsigned trial = 0; trial < 200; ++trial) {
        ExactBuf block(64);
        fill(rng, block.data(), 64);
        unsigned want = naiveLitmus(block.data());
        for (auto be : backends)
            EXPECT_EQ(simd::kernels(be).scrambler_litmus_score64(
                          block.data()),
                      want)
                << simd::backendName(be) << " trial=" << trial;
    }

    // Self-consistent block: both 8-byte halves of each 16-byte row
    // identical makes every equation cancel.
    ExactBuf zero_err(64);
    fill(rng, zero_err.data(), 64);
    for (unsigned row = 0; row < 64; row += 16)
        std::memcpy(zero_err.data() + row + 8, zero_err.data() + row,
                    8);
    for (auto be : backends)
        EXPECT_EQ(simd::kernels(be).scrambler_litmus_score64(
                      zero_err.data()),
                  0u)
            << simd::backendName(be);
}

TEST(SimdKernels, DecayApplyGroundCountsAndOverwrites)
{
    auto backends = usableBackends();
    Xoshiro256StarStar rng(0xDECA);

    for (size_t n : {0u, 1u, 63u, 64u, 65u, 192u, 4097u}) {
        ExactBuf data0(n), ground(n);
        fill(rng, data0.data(), n);
        fill(rng, ground.data(), n);
        uint64_t want =
            naiveDistance(data0.data(), ground.data(), n);

        for (auto be : backends) {
            ExactBuf data(n);
            std::memcpy(data.data(), data0.data(), n);
            uint64_t flips = simd::kernels(be).decay_apply_ground(
                data.data(), ground.data(), n);
            EXPECT_EQ(flips, want)
                << simd::backendName(be) << " n=" << n;
            EXPECT_EQ(std::memcmp(data.data(), ground.data(), n), 0)
                << simd::backendName(be) << " n=" << n;
        }
    }
}

//
// Dispatch plumbing.
//

TEST(SimdDispatch, BackendNamesRoundTrip)
{
    for (unsigned i = 0; i < simd::kBackendCount; ++i) {
        auto b = static_cast<simd::Backend>(i);
        auto parsed = simd::parseBackend(simd::backendName(b));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, b);
    }
    EXPECT_FALSE(simd::parseBackend("neon").has_value());
    EXPECT_FALSE(simd::parseBackend("").has_value());
    EXPECT_FALSE(simd::parseBackend("AVX2").has_value());
}

TEST(SimdDispatch, ScalarAlwaysUsable)
{
    EXPECT_TRUE(simd::backendCompiled(simd::Backend::Scalar));
    EXPECT_TRUE(simd::backendUsable(simd::Backend::Scalar));
}

TEST(SimdDispatch, ScopedBackendRestores)
{
    auto before = simd::activeBackend();
    {
        simd::ScopedBackend forced(simd::Backend::Scalar);
        ASSERT_TRUE(forced.active());
        EXPECT_EQ(simd::activeBackend(), simd::Backend::Scalar);
        // Dispatched wrappers agree with the forced backend's table.
        uint8_t a[13] = {0xff, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
        uint8_t b[13] = {};
        EXPECT_EQ(simd::hammingDistance(a, b, 13),
                  naiveDistance(a, b, 13));
    }
    EXPECT_EQ(simd::activeBackend(), before);
}

TEST(SimdDispatch, EnvOverrideSelectsBackend)
{
    auto saved = simd::activeBackend();
    setenv("COLDBOOT_SIMD", "scalar", 1);
    simd::reinitFromEnv();
    EXPECT_EQ(simd::activeBackend(), simd::Backend::Scalar);
    unsetenv("COLDBOOT_SIMD");
    simd::reinitFromEnv(); // back to the CPUID best
    ASSERT_TRUE(simd::setBackend(saved));
}

TEST(SimdDispatchDeathTest, UnknownEnvValueIsFatal)
{
    EXPECT_EXIT(
        {
            setenv("COLDBOOT_SIMD", "mmx", 1);
            simd::reinitFromEnv();
        },
        testing::ExitedWithCode(1), "unknown backend");
}

TEST(SimdDispatchDeathTest, KernelsAbortsOnUnusableBackend)
{
    // Find a backend this host cannot run, if any.
    for (unsigned i = 0; i < simd::kBackendCount; ++i) {
        auto b = static_cast<simd::Backend>(i);
        if (!simd::backendUsable(b)) {
            EXPECT_DEATH(simd::kernels(b), "backendUsable");
            return;
        }
    }
    GTEST_SKIP() << "every backend is usable on this host";
}

//
// Regression: the span-level bits.hh helpers must count tail bytes
// on non-multiple-of-8 sizes (the pre-SIMD bounded-distance helpers
// in the attack layer silently dropped them).
//

TEST(SimdTailRegression, OddSizedSpansCountTailBits)
{
    for (size_t n : {1u, 3u, 7u, 9u, 15u, 63u, 65u, 127u}) {
        std::vector<uint8_t> a(n, 0x00), b(n, 0xff);
        EXPECT_EQ(hammingDistance(a, b), 8 * n) << "n=" << n;
        EXPECT_EQ(hammingWeight(b), 8 * n) << "n=" << n;

        // Flip only the last byte: a tail-dropping implementation
        // reports 0 for any n not a multiple of 8.
        std::vector<uint8_t> c(n, 0x00);
        c[n - 1] = 0x81;
        EXPECT_EQ(hammingDistance(a, c), 2u) << "n=" << n;

        std::vector<uint8_t> d(n, 0x0f);
        xorBytes(d, c);
        for (size_t i = 0; i + 1 < n; ++i)
            EXPECT_EQ(d[i], 0x0f);
        EXPECT_EQ(d[n - 1], 0x0f ^ 0x81);
    }
}

TEST(SimdTailRegression, BoundedDistanceCountsTailOnEveryBackend)
{
    // 67 bytes differing only in the tail: the distance must be seen
    // even though no whole 8-byte word covers it.
    constexpr size_t n = 67;
    ExactBuf a(n), b(n);
    std::memset(a.data(), 0, n);
    std::memset(b.data(), 0, n);
    b.data()[64] = 0xff;
    b.data()[66] = 0x01;
    for (auto be : usableBackends()) {
        EXPECT_EQ(simd::kernels(be).hamming_bounded(a.data(), b.data(),
                                                    n, 100),
                  9u)
            << simd::backendName(be);
        EXPECT_EQ(simd::kernels(be).hamming_bounded(a.data(), b.data(),
                                                    n, 8),
                  9u)
            << simd::backendName(be);
        EXPECT_EQ(simd::kernels(be).hamming_bounded(a.data(), b.data(),
                                                    n, 4),
                  5u)
            << simd::backendName(be);
    }
}

} // anonymous namespace
} // namespace coldboot
