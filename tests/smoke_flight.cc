/**
 * @file
 * Pure-ctest smoke test for the deep-profiling plane (causal traces +
 * flight recorder): build a tiny cold-boot dump in-process, then
 * drive `coldboot-tool` end to end:
 *
 *  - `attack --threads 4 --trace --profile-spans` must emit Chrome
 *    trace_event JSON in which every pool task's "exec.task" slice is
 *    linked to its submission site by a flow-start/flow-finish pair
 *    (`ph: "s"` / `ph: "f"`), the finish lands inside the task slice
 *    on the task's thread, and task parent ids resolve to real
 *    enclosing spans - the structural properties Perfetto needs to
 *    draw the arrows;
 *
 *  - `crash-test --flight-record` must die by the induced signal
 *    (SIGSEGV, then SIGABRT) and leave a parseable post-mortem JSON
 *    naming the signal and carrying the crashing thread's last
 *    breadcrumbs plus the pre-rendered stats snapshot;
 *
 *  - the determinism gate: key-recovery output must be byte-identical
 *    with tracing + flight recording + span perf on vs off, at pool
 *    widths 1 and 4 (DESIGN.md §9/§12 - observation must not perturb
 *    results).
 *
 * Usage: smoke_flight <path-to-coldboot-tool>
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "dram/dram_module.hh"
#include "obs/json.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;

namespace
{

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    } else {
        std::printf("ok: %s\n", what);
    }
}

/** A 2 MiB victim dump, mirroring `coldboot-tool simulate-victim`. */
void
writeTinyDump(const std::string &dump_path)
{
    constexpr uint64_t capacity = MiB(2);
    constexpr uint64_t seed = 47;

    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, seed);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, capacity,
                              dram::DecayParams{}, seed + 1));
    victim.boot();
    fillWorkload(victim, {}, seed + 2);

    auto vf = volume::VolumeFile::create("hunter2", 16, seed + 3);
    auto mounted = volume::MountedVolume::mount(
        victim, vf, "hunter2", capacity * 3 / 4 + 16);
    std::vector<uint8_t> secret(volume::sectorBytes, 0);
    std::memcpy(secret.data(), "flight", 6);
    mounted->writeSector(3, secret);

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     seed + 4);
    auto cold = coldBootTransfer(victim, attacker, 0);
    cold.dump.saveRaw(dump_path);
}

/** Run @p cmd, capture stdout; rc -1 on launch failure. */
int
runCapture(const std::string &cmd, std::string &output)
{
    output.clear();
    std::FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return -1;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        output.append(buf, n);
    return pclose(pipe);
}

/**
 * The deterministic portion of an `attack` run's stdout: the
 * mined/recovered/pair counts (timing figures stripped) and the
 * recovered key material; everything timing-dependent is excluded.
 */
std::string
filterDeterministic(const std::string &output)
{
    std::string result;
    size_t pos = 0;
    while (pos < output.size()) {
        size_t eol = output.find('\n', pos);
        if (eol == std::string::npos)
            eol = output.size();
        std::string line = output.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("mined ", 0) == 0) {
            size_t cut = line.find("XTS pair(s);");
            if (cut != std::string::npos)
                line.resize(cut + std::strlen("XTS pair(s);"));
            result += line + "\n";
        } else if (line.rfind("XTS master keys", 0) == 0 ||
                   line.rfind("  data :", 0) == 0 ||
                   line.rfind("  tweak:", 0) == 0) {
            result += line + "\n";
        }
    }
    return result;
}

double
numField(const obs::json::Value &ev, const char *key)
{
    const auto *v = ev.find(key);
    return v != nullptr ? v->number : -1.0;
}

std::string
strField(const obs::json::Value &ev, const char *key)
{
    const auto *v = ev.find(key);
    return v != nullptr ? v->str : std::string();
}

/**
 * Structural validation of the Chrome trace a pool-width-4 attack
 * writes: exactly the properties Perfetto/chrome://tracing rely on
 * to load the file and draw submit-to-run flow arrows.
 */
void
traceStructureTest(const std::string &tool,
                   const std::string &dump_path)
{
    const std::string trace_path = "smoke_flight_trace.json";
    std::remove(trace_path.c_str());

    std::string cmd = "\"" + tool + "\" attack \"" + dump_path +
                      "\" --threads 4 --trace \"" + trace_path +
                      "\" --profile-spans";
    std::printf("+ %s\n", cmd.c_str());
    std::string output;
    int rc = runCapture(cmd, output);
    check(rc == 0 || rc == 1 * 256, "traced attack exits cleanly");

    auto doc = obs::json::parseFile(trace_path);
    check(doc.has_value(), "--trace artifact parses as JSON");
    if (!doc.has_value())
        return;
    check(doc->isArray() && !doc->array.empty(),
          "trace is a non-empty event array");

    // Index the events: slices by span id, flow starts/finishes by
    // flow-binding id.
    std::map<std::string, const obs::json::Value *> slice_by_span;
    std::map<std::string, int> flow_starts, flow_finishes;
    std::map<std::string, const obs::json::Value *> finish_by_id;
    std::vector<const obs::json::Value *> task_slices;
    size_t named_spans = 0;
    bool fields_ok = true;

    for (const auto &ev : doc->array) {
        std::string ph = strField(ev, "ph");
        if (strField(ev, "name").empty() || ph.empty() ||
            ev.find("ts") == nullptr || ev.find("pid") == nullptr ||
            ev.find("tid") == nullptr)
            fields_ok = false;
        if (ph == "X") {
            const auto *args = ev.find("args");
            if (args == nullptr || args->find("span") == nullptr ||
                ev.find("dur") == nullptr) {
                fields_ok = false;
                continue;
            }
            slice_by_span[args->find("span")->str] = &ev;
            if (strField(ev, "name") == "exec.task")
                task_slices.push_back(&ev);
            else
                ++named_spans;
        } else if (ph == "s") {
            ++flow_starts[strField(ev, "id")];
        } else if (ph == "f") {
            ++flow_finishes[strField(ev, "id")];
            finish_by_id[strField(ev, "id")] = &ev;
            if (strField(ev, "bp") != "e")
                fields_ok = false;
        } else {
            fields_ok = false;
        }
    }
    check(fields_ok, "every event carries the required fields");
    check(!task_slices.empty(),
          "pool tasks recorded as exec.task slices");
    check(named_spans > 0, "phase spans recorded alongside tasks");

    // Every pool task must be linked: exactly one flow start at its
    // submit site and one flow finish bound inside the task slice.
    bool all_linked = true;
    bool finish_in_slice = true;
    bool causality_ordered = true;
    size_t parented_tasks = 0;
    for (const auto *task : task_slices) {
        const auto *args = task->find("args");
        std::string flow = args != nullptr ? strField(*args, "flow")
                                           : std::string();
        if (flow.empty() || flow_starts[flow] != 1 ||
            flow_finishes[flow] != 1) {
            all_linked = false;
            continue;
        }
        const auto *fin = finish_by_id[flow];
        double ts = numField(*task, "ts");
        double dur = numField(*task, "dur");
        if (numField(*fin, "tid") != numField(*task, "tid") ||
            numField(*fin, "ts") < ts ||
            numField(*fin, "ts") > ts + dur)
            finish_in_slice = false;
        // The flow start happens at submission, strictly no later
        // than the finish stamped inside the running task.
        // (Identical timestamps are possible at µs resolution.)
        for (const auto &ev : doc->array)
            if (strField(ev, "ph") == "s" &&
                strField(ev, "id") == flow &&
                numField(ev, "ts") > numField(*fin, "ts"))
                causality_ordered = false;
        std::string parent =
            args != nullptr ? strField(*args, "parent")
                            : std::string();
        if (parent != "0x0" && slice_by_span.count(parent) != 0)
            ++parented_tasks;
    }
    check(all_linked,
          "every exec.task has exactly one s/f flow pair");
    check(finish_in_slice,
          "flow finish lands inside its task slice, same tid");
    check(causality_ordered, "flow start precedes flow finish");
    check(parented_tasks > 0,
          "task parent ids resolve to real enclosing spans");

    // The attack's own phase spans (the submitters of the pool
    // tasks) must be present by name.
    bool saw_pipeline = false;
    bool saw_parallel_for = false;
    for (const auto &kv : slice_by_span) {
        if (strField(*kv.second, "name") == "attack.pipeline")
            saw_pipeline = true;
        if (strField(*kv.second, "name") == "exec.parallel_for")
            saw_parallel_for = true;
    }
    check(saw_pipeline, "attack.pipeline phase span recorded");
    check(saw_parallel_for, "exec.parallel_for submit span recorded");

    // Span-perf args are all-or-nothing per event (absent when
    // perf_event_open is unavailable in the sandbox).
    bool perf_consistent = true;
    size_t perf_spans = 0;
    for (const auto &kv : slice_by_span) {
        const auto *args = kv.second->find("args");
        bool c = args->find("cycles") != nullptr;
        bool i = args->find("instructions") != nullptr;
        bool m = args->find("cache_misses") != nullptr;
        if (c != i || c != m)
            perf_consistent = false;
        if (c)
            ++perf_spans;
    }
    check(perf_consistent,
          "perf args are consistent (cycles+instructions+misses)");
    std::printf("note: %zu/%zu spans carry perf deltas\n", perf_spans,
                slice_by_span.size());
}

/** One induced crash; validates the post-mortem JSON it leaves. */
void
crashForensicsOnce(const std::string &tool,
                   const std::string &dump_path, bool use_abort,
                   int want_signal, const char *want_reason)
{
    const std::string post_path = use_abort
        ? "smoke_flight_post_abort.json"
        : "smoke_flight_post_segv.json";
    std::remove(post_path.c_str());

    std::string cmd = "\"" + tool + "\" crash-test \"" + dump_path +
                      "\"" + (use_abort ? " abort" : "") +
                      " --flight-record \"" + post_path +
                      "\" 2>&1";
    std::printf("+ %s\n", cmd.c_str());
    std::string output;
    int rc = runCapture(cmd, output);
    // The tool must die by the induced signal (the shell reports
    // 128+sig), not exit in an orderly way.
    check(rc > 0 && rc != 1 * 256, "crash-test dies by signal");
    check(output.find("post-mortem") != std::string::npos,
          "crash handler announces the dump on stderr");

    auto doc = obs::json::parseFile(post_path);
    check(doc.has_value(), "post-mortem JSON parses");
    if (!doc.has_value())
        return;

    check(numField(*doc, "signal") == want_signal,
          "post-mortem names the fatal signal");
    check(strField(*doc, "reason") == want_reason,
          "post-mortem names the signal reason");

    int crashing = static_cast<int>(numField(*doc, "crashing_ring"));
    check(crashing >= 0, "crashing ring identified");

    const auto *threads = doc->find("threads");
    check(threads != nullptr && !threads->array.empty(),
          "post-mortem carries per-thread event rings");
    bool crashing_has_events = false;
    bool saw_warn_breadcrumb = false;
    if (threads != nullptr) {
        for (const auto &t : threads->array) {
            const auto *events = t.find("events");
            if (events == nullptr)
                continue;
            if (static_cast<int>(numField(t, "ring")) == crashing &&
                !events->array.empty())
                crashing_has_events = true;
            for (const auto &e : events->array)
                if (strField(e, "name").rfind("crash-test: raising",
                                              0) == 0)
                    saw_warn_breadcrumb = true;
        }
    }
    check(crashing_has_events,
          "crashing thread's last events captured");
    check(saw_warn_breadcrumb,
          "pre-crash warn breadcrumb visible in a ring");

    const auto *stats = doc->find("stats");
    check(stats != nullptr && stats->find("stats") != nullptr,
          "pre-rendered stats snapshot embedded");
    std::remove(post_path.c_str());
}

void
crashForensicsTest(const std::string &tool,
                   const std::string &dump_path)
{
    crashForensicsOnce(tool, dump_path, false, 11, "SIGSEGV");
    crashForensicsOnce(tool, dump_path, true, 6, "SIGABRT");
}

void
determinismTest(const std::string &tool, const std::string &dump_path)
{
    struct Variant
    {
        const char *label;
        std::string cmd;
    };
    const std::string base = "\"" + tool + "\" attack \"" + dump_path +
                             "\"";
    const std::string obs_on =
        " --trace smoke_flight_det_trace.json"
        " --flight-record smoke_flight_det_post.json"
        " --profile-spans";
    std::vector<Variant> variants = {
        {"threads=1 obs=off", base + " --threads 1"},
        {"threads=1 obs=on", base + " --threads 1" + obs_on},
        {"threads=4 obs=off", base + " --threads 4"},
        {"threads=4 obs=on", base + " --threads 4" + obs_on},
    };

    std::string reference;
    for (const auto &v : variants) {
        std::printf("+ %s\n", v.cmd.c_str());
        std::string output;
        int rc = runCapture(v.cmd, output);
        check(rc == 0 || rc == 1 * 256, v.label);
        std::string filtered = filterDeterministic(output);
        check(!filtered.empty(), "attack output non-empty");
        if (reference.empty()) {
            reference = filtered;
            continue;
        }
        bool same = filtered == reference;
        if (!same)
            std::fprintf(stderr,
                         "  [%s] diverged:\n--- reference\n%s--- got\n"
                         "%s",
                         v.label, reference.c_str(), filtered.c_str());
        check(same, "attack results byte-identical to reference");
    }
    // No crash happened, so the armed recorder must not have written
    // a post-mortem artifact.
    std::FILE *f = std::fopen("smoke_flight_det_post.json", "r");
    check(f == nullptr, "no post-mortem written on clean runs");
    if (f != nullptr)
        std::fclose(f);
    std::remove("smoke_flight_det_trace.json");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: smoke_flight <coldboot-tool>\n");
        return 2;
    }
    std::string tool = argv[1];
    std::string dump_path = "smoke_flight_dump.img";
    writeTinyDump(dump_path);

    traceStructureTest(tool, dump_path);
    crashForensicsTest(tool, dump_path);
    determinismTest(tool, dump_path);

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("smoke_flight: all checks passed\n");
    return 0;
}
