/**
 * @file
 * Pure-ctest smoke test for the coldboot-fuzz driver: runs a small
 * fixed-seed campaign three times (twice identically, once with a
 * COLDBOOT_THREADS=4 pool) and requires the campaign-report JSON to
 * be byte-identical - the determinism contract the CI fuzz-smoke job
 * relies on - then validates the report schema with the in-tree JSON
 * parser and exercises the --list / --reproduce / usage-error paths.
 *
 * Usage: smoke_fuzz_json <path-to-coldboot-fuzz>
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.hh"

using namespace coldboot;

namespace
{

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    } else {
        std::printf("ok: %s\n", what);
    }
}

std::string
slurp(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

int
run(const std::string &cmd)
{
    std::printf("+ %s\n", cmd.c_str());
    int rc = std::system(cmd.c_str());
    return rc;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: smoke_fuzz_json <coldboot-fuzz>\n");
        return 2;
    }
    std::string tool = "\"" + std::string(argv[1]) + "\"";
    const std::string campaign =
        " --seed-range 0:12 --profile smoke --energy 2";

    check(run(tool + " --list > smoke_fuzz_list.txt") == 0,
          "--list exits 0");
    std::string listing = slurp("smoke_fuzz_list.txt");
    check(listing.find("scramble-roundtrip") != std::string::npos &&
              listing.find("dump-backend-equality") != std::string::npos,
          "--list names the catalogue");

    // The determinism contract: same campaign, three runs - one
    // repeat, one under a 4-worker pool - byte-identical reports.
    check(run(tool + campaign + " --report smoke_fuzz_a.json") == 0,
          "campaign run A exits 0 (no violations)");
    check(run(tool + campaign + " --report smoke_fuzz_b.json") == 0,
          "campaign run B exits 0");
    check(run("COLDBOOT_THREADS=4 " + tool + campaign +
              " --report smoke_fuzz_c.json") == 0,
          "campaign run C (4 workers) exits 0");

    std::string a = slurp("smoke_fuzz_a.json");
    check(!a.empty(), "report A written");
    check(a == slurp("smoke_fuzz_b.json"),
          "report B is byte-identical to A");
    check(a == slurp("smoke_fuzz_c.json"),
          "report under COLDBOOT_THREADS=4 is byte-identical to A");

    // Schema: parses, pinned tag, string seeds, every oracle ran.
    auto doc = obs::json::parse(a);
    check(doc.has_value(), "report parses as JSON");
    if (doc) {
        const auto *schema = doc->find("schema");
        check(schema && schema->str == "coldboot-fuzz-campaign-v1",
              "schema tag is coldboot-fuzz-campaign-v1");
        const auto *begin = doc->find("seed_begin");
        check(begin && begin->isString(),
              "64-bit seeds serialized as strings");
        const auto *violations = doc->find("total_violations");
        check(violations && violations->number == 0.0,
              "campaign found no violations");
        const auto *oracles = doc->find("oracles");
        check(oracles && oracles->isArray() &&
                  oracles->array.size() == 11,
              "report covers all 11 oracles");
        if (oracles && oracles->isArray())
            for (const auto &o : oracles->array) {
                const auto *cases = o.find("cases");
                const auto *name = o.find("name");
                check(cases && cases->number >= 1.0 && name,
                      "every oracle ran at least one case");
            }
    }

    // One-line reproducer replay.
    check(run(tool + " --reproduce \"oracle=aes-schedule-inverse:"
                     "seed=7:energy=2:scale=0\"") == 0,
          "--reproduce of a holding case exits 0");

    // Usage errors exit 2, not crash.
    check(run(tool + " --no-such-flag > /dev/null 2>&1") == 2 * 256,
          "unknown flag exits 2");
    check(run(tool + " --oracle no-such-oracle > /dev/null 2>&1") ==
              2 * 256,
          "unknown oracle exits 2");
    check(run(tool + " --seed-range banana > /dev/null 2>&1") ==
              2 * 256,
          "malformed seed range exits 2");

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("smoke_fuzz_json: all checks passed\n");
    return 0;
}
