/**
 * @file
 * Platform tests: machine lifecycle, BIOS seed policy, memory image
 * statistics, workload composition, cold boot transfer and the
 * reverse-cold-boot analysis procedures.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/bits.hh"
#include "common/units.hh"
#include "dram/dram_module.hh"
#include "memctrl/scrambler.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"

namespace coldboot::platform
{
namespace
{

using dram::DramModule;
using dram::Generation;

std::shared_ptr<DramModule>
makeDimm(uint64_t bytes, uint64_t seed,
         Generation gen = Generation::DDR4)
{
    return std::make_shared<DramModule>(gen, bytes,
                                        dram::DecayParams{}, seed);
}

Machine
makeSkylake(uint64_t seed, BiosConfig bios = {})
{
    return Machine(cpuModelByName("i5-6400"), bios, 1, seed);
}

TEST(CpuTable, FiveModelsFromTableOne)
{
    const auto &table = cpuModelTable();
    ASSERT_EQ(table.size(), 5u);
    int ddr4 = 0;
    for (const auto &m : table)
        ddr4 += memctrl::cpuUsesDdr4(m.generation);
    EXPECT_EQ(ddr4, 2); // i5-6400 and i5-6600K
    EXPECT_EQ(cpuModelByName("i7-3540M").generation,
              memctrl::CpuGeneration::IvyBridge);
    EXPECT_DEATH(cpuModelByName("i9-9999X"), "unknown CPU");
}

TEST(Machine, BootWriteReadCycle)
{
    Machine m = makeSkylake(1);
    m.installDimm(0, makeDimm(MiB(1), 2));
    m.boot();
    EXPECT_TRUE(m.isOn());

    std::vector<uint8_t> data(128, 0x42);
    m.writePhys(MiB(1) / 2, data);
    std::vector<uint8_t> back(128);
    m.readPhys(MiB(1) / 2, back);
    EXPECT_EQ(back, data);
}

TEST(Machine, SeedChangesEveryBootByDefault)
{
    Machine m = makeSkylake(3);
    m.installDimm(0, makeDimm(MiB(1), 4));
    m.boot();
    uint64_t seed1 = m.currentSeed();
    m.reboot();
    EXPECT_NE(m.currentSeed(), seed1);
}

TEST(Machine, LazyVendorBiosKeepsSeed)
{
    BiosConfig bios;
    bios.reset_seed_each_boot = false;
    Machine m = makeSkylake(5, bios);
    m.installDimm(0, makeDimm(MiB(1), 6));
    m.boot();
    uint64_t seed1 = m.currentSeed();
    m.reboot();
    EXPECT_EQ(m.currentSeed(), seed1);
}

TEST(Machine, BootPollutionClobbersLowMemoryOnly)
{
    BiosConfig bios;
    bios.boot_pollution_bytes = KiB(64);
    Machine m = makeSkylake(7, bios);
    auto dimm = makeDimm(MiB(1), 8);
    m.installDimm(0, dimm);
    m.boot();
    std::vector<uint8_t> marker(64, 0xee);
    m.writePhys(KiB(64), marker);      // just past pollution zone
    m.writePhys(KiB(512), marker);

    m.shutdown();
    m.boot(); // repollutes low memory, reseeds

    // High marker line raw bytes unchanged by the reboot itself
    // (only the descrambling view changed).
    // Verify by checking the raw DRAM, which the reboot must not
    // have touched above the pollution limit.
    std::vector<uint8_t> raw(64);
    dimm->read(KiB(512), raw);
    uint8_t key[64];
    // Note: seed changed; raw bytes still reflect the *old* seed's
    // scramble of the marker, i.e. they are not the marker and not
    // the new keystream. Just assert they were not zeroed.
    EXPECT_GT(hammingWeight(raw), 0u);
    (void)key;
}

TEST(Machine, UnalignedByteAccessRoundTrip)
{
    Machine m = makeSkylake(9);
    m.installDimm(0, makeDimm(MiB(1), 10));
    m.boot();
    std::vector<uint8_t> data(100);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i);
    m.writePhysBytes(KiB(4) + 13, data);
    std::vector<uint8_t> back(100);
    m.readPhysBytes(KiB(4) + 13, back);
    EXPECT_EQ(back, data);
}

TEST(Machine, DumpMatchesSoftwareView)
{
    Machine m = makeSkylake(11);
    m.installDimm(0, makeDimm(MiB(1), 12));
    m.boot();
    std::vector<uint8_t> data(64, 0x5d);
    m.writePhys(KiB(768), data);
    MemoryImage dump = m.dumpMemory();
    EXPECT_EQ(0, memcmp(dump.bytes().data() + KiB(768), data.data(),
                        64));
}

TEST(MemoryImage, StatsAndPgm)
{
    MemoryImage img(KiB(4));
    auto b = img.bytesMutable();
    // Two identical nonzero lines + rest zero.
    for (int i = 0; i < 64; ++i) {
        b[i] = 0xab;
        b[64 + i] = 0xab;
    }
    // 62 zero lines pair among themselves: C(62,2) + the one ab pair.
    EXPECT_EQ(img.duplicateLinePairs(), 62u * 61 / 2 + 1);
    EXPECT_GT(img.onesFraction(), 0.0);
    EXPECT_LT(img.onesFraction(), 0.05);

    MemoryImage other(KiB(4));
    EXPECT_EQ(img.identicalLines(other), 62u);

    img.savePgm("/tmp/cb_test.pgm", 64);
    FILE *f = fopen("/tmp/cb_test.pgm", "rb");
    ASSERT_NE(f, nullptr);
    char magic[3] = {};
    ASSERT_EQ(fread(magic, 1, 2, f), 2u);
    EXPECT_EQ(magic[0], 'P');
    EXPECT_EQ(magic[1], '5');
    fclose(f);
}

TEST(Workload, CompositionRoughlyAsRequested)
{
    WorkloadParams params;
    double zf = zeroLineFraction(params, 42, 400);
    // Zero pages plus zero lines inside heap pages push the zero-line
    // fraction above the page fraction alone.
    EXPECT_GT(zf, 0.25);
    EXPECT_LT(zf, 0.55);
}

TEST(Workload, DeterministicPerSeed)
{
    WorkloadParams params;
    std::vector<uint8_t> a(4096), b(4096);
    generatePage(params, 7, 123, a);
    generatePage(params, 7, 123, b);
    EXPECT_EQ(a, b);
    generatePage(params, 8, 123, b);
    EXPECT_NE(a, b);
}

TEST(Workload, FillsMachineMemory)
{
    Machine m = makeSkylake(13);
    m.installDimm(0, makeDimm(MiB(1), 14));
    m.boot();
    fillWorkload(m, {}, 99);
    MemoryImage dump = m.dumpMemory();
    // Mixed content: neither all zero nor uniformly random.
    double ones = dump.onesFraction();
    EXPECT_GT(ones, 0.05);
    EXPECT_LT(ones, 0.45);
}

TEST(ColdBoot, TransferPreservesMostBits)
{
    Machine victim = makeSkylake(15);
    victim.installDimm(0, makeDimm(MiB(1), 16));
    victim.boot();
    fillWorkload(victim, {}, 100);

    Machine attacker = makeSkylake(17);
    ColdBootParams params; // cooled, 5 s
    auto result = coldBootTransfer(victim, attacker, 0, params);
    EXPECT_TRUE(attacker.isOn());
    EXPECT_EQ(result.dump.size(), MiB(1));

    // Cooled transfer: a few percent of bits flip at most.
    double flip_frac = static_cast<double>(result.bits_flipped) /
                       (MiB(1) * 8.0);
    EXPECT_LT(flip_frac, 0.05);
    EXPECT_GT(result.bits_flipped, 0u);
}

TEST(ColdBoot, WarmTransferLosesFarMore)
{
    auto run = [](bool cool) {
        Machine victim = makeSkylake(19);
        victim.installDimm(0, makeDimm(MiB(1), 20));
        victim.boot();
        fillWorkload(victim, {}, 200);
        Machine attacker = makeSkylake(21);
        ColdBootParams params;
        params.cool_first = cool;
        return coldBootTransfer(victim, attacker, 0, params)
            .bits_flipped;
    };
    EXPECT_GT(run(false), 10 * run(true));
}

TEST(ColdBoot, ReverseColdBootRecoversExactKeystream)
{
    // Analysis framework: the extracted keystream must equal the
    // scrambler's true keys outside the firmware-polluted region.
    BiosConfig bios;
    bios.boot_pollution_bytes = KiB(64);
    Machine analyzed = makeSkylake(23, bios);
    analyzed.installDimm(0, makeDimm(MiB(1), 24));

    MemoryImage keystream =
        reverseColdBootExtractKeystream(analyzed, 0);

    auto &scr = analyzed.controller().scrambler(0);
    uint8_t key[64];
    size_t checked = 0;
    for (uint64_t addr = KiB(64); addr + 64 <= MiB(1);
         addr += 4096 + 64) {
        scr.lineKey(addr, key);
        ASSERT_EQ(0, memcmp(keystream.bytes().data() + addr, key, 64))
            << "addr " << addr;
        ++checked;
    }
    EXPECT_GT(checked, 100u);
}

TEST(ColdBoot, GroundStateVariantAlsoRecoversKeystream)
{
    BiosConfig bios;
    bios.boot_pollution_bytes = 0;
    Machine analyzed = makeSkylake(25, bios);
    analyzed.installDimm(0, makeDimm(MiB(1), 26));

    MemoryImage keystream = groundStateExtractKeystream(analyzed, 0);

    auto &scr = analyzed.controller().scrambler(0);
    uint8_t key[64];
    for (uint64_t addr = 0; addr + 64 <= MiB(1); addr += 8192) {
        scr.lineKey(addr, key);
        ASSERT_EQ(0, memcmp(keystream.bytes().data() + addr, key, 64))
            << "addr " << addr;
    }
}

TEST(ColdBoot, CrossGenerationTransferWarns)
{
    Machine victim = makeSkylake(27);
    victim.installDimm(0, makeDimm(MiB(1), 28));
    victim.boot();
    Machine attacker(cpuModelByName("i5-2540M"), BiosConfig{}, 1, 29);
    // Should complete (with a warning), not crash.
    auto result = coldBootTransfer(victim, attacker, 0);
    EXPECT_EQ(result.dump.size(), MiB(1));
}

} // anonymous namespace
} // namespace coldboot::platform
