/**
 * @file
 * Fuzzing-subsystem tests: seed-addressed RNG, structured mutators,
 * reducer/reproducer grammar, corpus parsing and replay, the oracle
 * registry, campaign determinism across runs and worker counts, and
 * the regression cases the fuzzer has earned.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "attack/key_miner.hh"
#include "fuzz/corpus.hh"
#include "fuzz/dump_builder.hh"
#include "fuzz/fuzz_rng.hh"
#include "fuzz/harness.hh"
#include "fuzz/mutator.hh"
#include "fuzz/oracle.hh"
#include "fuzz/reducer.hh"
#include "obs/json.hh"
#include "platform/memory_image.hh"

namespace coldboot::fuzz
{
namespace
{

// ---------------------------------------------------------------- rng

TEST(FuzzRng, DeriveCaseSeedSeparatesInputs)
{
    uint64_t s = deriveCaseSeed(7, "miner-planted-keys", 0);
    EXPECT_EQ(s, deriveCaseSeed(7, "miner-planted-keys", 0));
    EXPECT_NE(s, deriveCaseSeed(8, "miner-planted-keys", 0));
    EXPECT_NE(s, deriveCaseSeed(7, "scramble-roundtrip", 0));
    EXPECT_NE(s, deriveCaseSeed(7, "miner-planted-keys", 1));
    EXPECT_NE(hashName("a"), hashName("b"));
}

TEST(FuzzRng, CaseRngIsReplayable)
{
    CaseRng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next());

    std::vector<uint8_t> fa(64), fb(64);
    a.fill(fa);
    b.fill(fb);
    EXPECT_EQ(fa, fb);

    for (int i = 0; i < 1000; ++i) {
        uint64_t v = a.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
        double u = a.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        int p = a.pick({3, 5, 9});
        EXPECT_TRUE(p == 3 || p == 5 || p == 9);
    }
}

// ----------------------------------------------------------- mutators

TEST(Mutator, DeterministicAndActuallyMutates)
{
    std::vector<uint8_t> base(4096, 0xAA);
    auto x = base, y = base;
    CaseRng ra(99), rb(99);
    MutationStats sa, sb;
    mutateBytes(x, ra, 32, {}, &sa);
    mutateBytes(y, rb, 32, {}, &sb);
    EXPECT_EQ(x, y);
    EXPECT_NE(x, base);
    uint32_t total = 0;
    for (unsigned k = 0; k < byteMutationKinds; ++k) {
        total += sa.applied[k];
        EXPECT_EQ(sa.applied[k], sb.applied[k]);
    }
    EXPECT_EQ(total + sa.skipped, 32u);
    EXPECT_EQ(sa.skipped, 0u); // nothing protected
}

TEST(Mutator, ProtectedRegionsSurvive)
{
    std::vector<uint8_t> data(4096);
    CaseRng fill_rng(5);
    fill_rng.fill(data);
    auto before = data;

    // Protect everything: every mutation must be skipped and the
    // buffer must come back untouched.
    ProtectedRegion all{0, data.size()};
    CaseRng rng(6);
    MutationStats stats;
    mutateBytes(data, rng, 64, {&all, 1}, &stats);
    EXPECT_EQ(data, before);
    EXPECT_EQ(stats.skipped, 64u);

    // Protect one line in the middle: it must survive any budget.
    ProtectedRegion line{1024, 1088};
    CaseRng rng2(7);
    mutateBytes(data, rng2, 512, {&line, 1});
    EXPECT_TRUE(std::equal(data.begin() + 1024, data.begin() + 1088,
                           before.begin() + 1024));
}

TEST(Mutator, EmptyInputIsNoOp)
{
    CaseRng rng(1);
    MutationStats stats;
    mutateBytes({}, rng, 16, {}, &stats);
    uint32_t total = stats.skipped;
    for (unsigned k = 0; k < byteMutationKinds; ++k)
        total += stats.applied[k];
    EXPECT_EQ(total, 0u); // early-out: nothing applied or skipped
}

TEST(Mutator, TargetDecayHitsRequestedFraction)
{
    std::vector<uint8_t> data(1 << 16);
    CaseRng rng(11);
    rng.fill(data);

    auto copy = data;
    EXPECT_EQ(applyTargetDecay(copy, 0.0, 42), 0u);
    EXPECT_EQ(copy, data);

    uint64_t flips = applyTargetDecay(copy, 0.02, 42);
    double frac =
        static_cast<double>(flips) / (8.0 * double(data.size()));
    // Random data sits ~half a ground-state stripe away, so the
    // visible fraction tracks the request loosely; assert the order
    // of magnitude, not the exact curve.
    EXPECT_GT(frac, 0.004);
    EXPECT_LT(frac, 0.08);
    EXPECT_NE(copy, data);

    // Out-of-range fractions clamp instead of misbehaving.
    auto clamp = data;
    EXPECT_EQ(applyTargetDecay(clamp, -1.0, 1), 0u);
}

TEST(Mutator, FileShapeVerdictsMatchValidityRule)
{
    for (uint64_t seed = 0; seed < 64; ++seed) {
        CaseRng rng(seed);
        for (unsigned k = 0; k < fileShapeMutationKinds; ++k) {
            std::vector<uint8_t> bytes(64 * 16, 0x5A);
            bool valid = applyFileShapeMutation(
                bytes, static_cast<FileShapeMutation>(k), rng);
            EXPECT_EQ(valid,
                      !bytes.empty() && bytes.size() % 64 == 0)
                << "kind=" << k << " seed=" << seed
                << " size=" << bytes.size();
        }
    }
    // The two hard-failure kinds must actually produce bad sizes.
    CaseRng rng(3);
    std::vector<uint8_t> a(640, 1), b(640, 1);
    EXPECT_FALSE(applyFileShapeMutation(
        a, FileShapeMutation::TruncateEmpty, rng));
    EXPECT_TRUE(a.empty());
    EXPECT_FALSE(applyFileShapeMutation(
        b, FileShapeMutation::TruncateMisaligned, rng));
    EXPECT_NE(b.size() % 64, 0u);
}

// ------------------------------------------------------- dump builder

TEST(DumpBuilder, PlantsRecoverableGroundTruth)
{
    FuzzDumpSpec spec;
    spec.bytes = 64 * 1024;
    spec.planted_keys = 3;
    spec.copies_per_key = 3;
    spec.plant_schedule = true;
    CaseRng rng(deriveCaseSeed(17, "test", 0));
    FuzzDump dump = buildFuzzDump(rng, spec);

    ASSERT_EQ(dump.bytes.size(), spec.bytes);
    // +1: the schedule's scramble key is planted (and recorded) too,
    // so the mine -> search hand-off can succeed end to end.
    EXPECT_EQ(dump.keys.size(), spec.planted_keys + 1u);
    ASSERT_TRUE(dump.schedule.has_value());
    EXPECT_EQ(dump.bits_decayed, 0u); // decay_fraction defaults to 0

    // Every planted key's copies are really in the image.
    for (const auto &key : dump.keys)
        for (uint64_t off : key.offsets)
            EXPECT_EQ(0, std::memcmp(&dump.bytes[off],
                                     key.key.data(), 64))
                << "offset " << off;

    // The schedule region descrambles back to the expansion of the
    // planted master key.
    const auto &sched = *dump.schedule;
    auto expanded = crypto::aesExpandKey(sched.master);
    for (size_t i = 0; i < expanded.size(); ++i)
        EXPECT_EQ(static_cast<uint8_t>(
                      dump.bytes[sched.offset + i] ^
                      sched.scramble_key[i % 64]),
                  expanded[i])
            << "schedule byte " << i;

    // Same seed, same dump - byte for byte.
    CaseRng rng2(deriveCaseSeed(17, "test", 0));
    FuzzDump again = buildFuzzDump(rng2, spec);
    EXPECT_EQ(dump.bytes, again.bytes);
    EXPECT_EQ(dump.scrambler_seed, again.scrambler_seed);
}

// ----------------------------------------------- reducer / reproducer

TEST(Reproducer, LineRoundTrips)
{
    FuzzCaseParams p;
    p.seed = 18446744073709551615ull; // max u64 survives
    p.energy = 12;
    p.scale = 3;
    std::string line = reproducerLine("aes-litmus-brute", p);
    EXPECT_EQ(line, "oracle=aes-litmus-brute:seed="
                    "18446744073709551615:energy=12:scale=3");
    auto parsed = parseReproducer(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first, "aes-litmus-brute");
    EXPECT_EQ(parsed->second.seed, p.seed);
    EXPECT_EQ(parsed->second.energy, p.energy);
    EXPECT_EQ(parsed->second.scale, p.scale);
}

TEST(Reproducer, RejectsMalformedLines)
{
    EXPECT_FALSE(parseReproducer(""));
    EXPECT_FALSE(parseReproducer("oracle=x"));
    EXPECT_FALSE(parseReproducer("seed=1:oracle=x:energy=1:scale=0"));
    EXPECT_FALSE(parseReproducer("oracle=x:seed=:energy=1:scale=0"));
    EXPECT_FALSE(parseReproducer("oracle=x:seed=a:energy=1:scale=0"));
    EXPECT_FALSE(
        parseReproducer("oracle=x:seed=1:energy=1:scale=0:junk=2"));
    EXPECT_FALSE(parseReproducer("oracle=x:seed=-1:energy=1:scale=0"));
}

TEST(Reproducer, RunReproducerChecksOracleName)
{
    EXPECT_FALSE(runReproducer(
        "oracle=no-such-oracle:seed=1:energy=1:scale=0"));
    auto res = runReproducer(
        "oracle=aes-schedule-inverse:seed=42:energy=2:scale=0");
    ASSERT_TRUE(res.has_value());
    EXPECT_FALSE(res->violation) << res->message;
    EXPECT_FALSE(res->features.empty());
}

TEST(Reproducer, GtestSnippetNamesTheCase)
{
    FuzzCaseParams p;
    p.seed = 77;
    std::string snippet = gtestSnippet("miner-planted-keys", p);
    EXPECT_NE(snippet.find("FuzzRegression"), std::string::npos);
    EXPECT_NE(snippet.find("77"), std::string::npos);
    EXPECT_NE(snippet.find("miner-planted-keys"), std::string::npos);
    EXPECT_NE(snippet.find("runReproducer"), std::string::npos);
}

namespace
{

/** Violates iff energy >= 2 and scale >= 1 - lets the reducer show
 *  its preference for smaller scales first. */
class FakeOracle : public Oracle
{
  public:
    const char *name() const override { return "fake"; }
    const char *description() const override { return "fake"; }
    OracleResult
    run(const FuzzCaseParams &params) const override
    {
        OracleResult res;
        if (params.energy >= 2 && params.scale >= 1)
            res.fail("fake violation");
        return res;
    }
};

} // anonymous namespace

TEST(Reducer, ShrinksToSmallestFailingCase)
{
    FakeOracle oracle;
    FuzzCaseParams original;
    original.seed = 5;
    original.energy = 16;
    original.scale = 3;
    FuzzCaseParams reduced = reduceViolation(oracle, original);
    EXPECT_EQ(reduced.seed, original.seed);
    EXPECT_EQ(reduced.scale, 1u); // smallest scale that still fails
    EXPECT_EQ(reduced.energy, 2u);
    ASSERT_TRUE(oracle.run(reduced).violation);

    // A case that is already minimal comes back unchanged.
    FuzzCaseParams minimal;
    minimal.energy = 2;
    minimal.scale = 1;
    FuzzCaseParams same = reduceViolation(oracle, minimal);
    EXPECT_EQ(same.energy, 2u);
    EXPECT_EQ(same.scale, 1u);
}

// -------------------------------------------------------------- corpus

TEST(Corpus, ParsesCommentsBlanksAndErrors)
{
    std::string text =
        "# header comment\n"
        "\n"
        "  oracle=scramble-roundtrip:seed=1:energy=4:scale=0\n"
        "this is garbage\n"
        "oracle=decay-monotone:seed=2:energy=1:scale=1\r\n"
        "\t# indented comment\n";
    std::vector<std::string> errors;
    auto entries = parseCorpus(text, "mem.corpus", &errors);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].oracle, "scramble-roundtrip");
    EXPECT_EQ(entries[0].line, 3u);
    EXPECT_EQ(entries[1].oracle, "decay-monotone");
    EXPECT_EQ(entries[1].params.scale, 1u);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("mem.corpus:4"), std::string::npos);

    EXPECT_EQ(formatCorpusEntry(entries[0]),
              "oracle=scramble-roundtrip:seed=1:energy=4:scale=0");
}

TEST(Corpus, CheckedInCorpusCoversTheCatalogue)
{
    std::vector<std::string> errors;
    auto entries = loadCorpusDir(
        COLDBOOT_SOURCE_DIR "/tests/fuzz_corpus", &errors);
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? "" : errors.front());
    ASSERT_FALSE(entries.empty());

    std::set<std::string> seen;
    for (const auto &e : entries) {
        ASSERT_NE(findOracle(e.oracle), nullptr)
            << e.file << ":" << e.line << " names unknown oracle '"
            << e.oracle << "'";
        seen.insert(e.oracle);
    }
    // Every registered oracle has at least one corpus entry.
    for (const Oracle *o : allOracles())
        EXPECT_TRUE(seen.count(o->name()))
            << "no corpus entry for " << o->name();
}

TEST(Corpus, CheckedInCorpusReplaysClean)
{
    auto entries =
        loadCorpusDir(COLDBOOT_SOURCE_DIR "/tests/fuzz_corpus");
    for (const auto &e : entries) {
        const Oracle *oracle = findOracle(e.oracle);
        ASSERT_NE(oracle, nullptr);
        OracleResult res = oracle->run(e.params);
        EXPECT_FALSE(res.violation)
            << e.file << ":" << e.line << ": "
            << formatCorpusEntry(e) << ": " << res.message;
    }
}

// ------------------------------------------------------------ registry

TEST(OracleRegistry, CatalogueIsWellFormed)
{
    const auto &oracles = allOracles();
    ASSERT_EQ(oracles.size(), 11u);
    std::set<std::string> names;
    for (const Oracle *o : oracles) {
        EXPECT_TRUE(names.insert(o->name()).second)
            << "duplicate oracle name " << o->name();
        EXPECT_NE(std::string(o->description()), "");
        EXPECT_GE(o->smokeStride(), 1u);
        EXPECT_EQ(findOracle(o->name()), o);
    }
    EXPECT_EQ(findOracle("not-an-oracle"), nullptr);
}

// ------------------------------------------------------------ campaign

TEST(Campaign, ReportIsIdenticalAcrossRunsAndWorkerCounts)
{
    CampaignConfig config;
    config.seed_begin = 0;
    config.seed_end = 8;
    config.energy = 2;
    config.threads = 1;

    std::string serial = runCampaign(config).toJson();
    EXPECT_EQ(serial, runCampaign(config).toJson());

    config.threads = 4;
    EXPECT_EQ(serial, runCampaign(config).toJson());
}

TEST(Campaign, EveryOracleRunsAndExploresBehaviours)
{
    CampaignConfig config;
    config.seed_begin = 0;
    config.seed_end = 8;
    config.energy = 2;
    config.threads = 0; // the shared global pool

    CampaignReport report = runCampaign(config);
    EXPECT_EQ(report.total_violations, 0u);
    ASSERT_EQ(report.oracles.size(), allOracles().size());

    uint64_t sum = 0;
    for (const auto &o : report.oracles) {
        EXPECT_GE(o.cases, 1u) << o.name << " never ran";
        EXPECT_GE(o.distinct_features, 1u)
            << o.name << " explored nothing";
        sum += o.cases;
    }
    EXPECT_EQ(sum, report.total_cases);

    // The report parses as JSON and carries the pinned schema tag,
    // with 64-bit seeds as strings so no parser rounds them.
    auto doc = obs::json::parse(report.toJson());
    ASSERT_TRUE(doc.has_value());
    const auto *schema = doc->find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "coldboot-fuzz-campaign-v1");
    const auto *begin = doc->find("seed_begin");
    ASSERT_NE(begin, nullptr);
    EXPECT_TRUE(begin->isString());
    const auto *oracles = doc->find("oracles");
    ASSERT_NE(oracles, nullptr);
    EXPECT_EQ(oracles->array.size(), allOracles().size());
}

TEST(Campaign, OracleFilterRestrictsTheRun)
{
    CampaignConfig config;
    config.seed_begin = 0;
    config.seed_end = 4;
    config.energy = 1;
    config.threads = 1;
    config.oracle_filter = {"aes-schedule-inverse"};
    CampaignReport report = runCampaign(config);
    ASSERT_EQ(report.oracles.size(), 1u);
    EXPECT_EQ(report.oracles[0].name, "aes-schedule-inverse");
    EXPECT_GE(report.oracles[0].cases, 4u);
}

// --------------------------------------------------------- regressions

TEST(FuzzRegression, MinerPlantedKeysSeed10385570186295769717)
{
    // First bug the fuzzer found (4-worker smoke campaign, seeds
    // 0:40): MinerStats.blocks_scanned was re-derived from the global
    // registry counter, so overlapping mining runs polluted each
    // other's per-run stats. tests/fuzz_corpus/regressions.corpus
    // carries the same entry.
    auto res = runReproducer("oracle=miner-planted-keys:"
                             "seed=10385570186295769717:"
                             "energy=4:scale=0");
    ASSERT_TRUE(res.has_value());
    EXPECT_FALSE(res->violation) << res->message;
}

TEST(FuzzRegression, MinerStatsAreIsolatedBetweenConcurrentRuns)
{
    // Direct form of the same invariant: two overlapping mining runs
    // of different sizes must each report their own block count.
    auto makeDump = [](uint64_t seed, uint64_t bytes) {
        FuzzDumpSpec spec;
        spec.bytes = bytes;
        CaseRng rng(seed);
        return buildFuzzDump(rng, spec);
    };
    FuzzDump small = makeDump(1, 64 * 1024);
    FuzzDump large = makeDump(2, 256 * 1024);

    attack::MinerStats small_stats, large_stats;
    auto mine = [](const FuzzDump &dump, attack::MinerStats *stats) {
        attack::MinerParams mp;
        mp.threads = 1;
        platform::MemoryImage image(dump.bytes);
        attack::mineScramblerKeys(image, mp, stats);
    };
    // The regression needs two truly concurrent miner runs; a pool
    // would serialize them on a 1-core host and mask the race.
    // coldboot-lint: allow(no-raw-thread) -- concurrency is the point
    std::thread a(mine, std::cref(small), &small_stats);
    // coldboot-lint: allow(no-raw-thread) -- concurrency is the point
    std::thread b(mine, std::cref(large), &large_stats);
    a.join();
    b.join();

    EXPECT_EQ(small_stats.blocks_scanned, small.bytes.size() / 64);
    EXPECT_EQ(large_stats.blocks_scanned, large.bytes.size() / 64);
}

} // anonymous namespace
} // namespace coldboot::fuzz
