/**
 * @file
 * Execution-subsystem tests: the work-stealing ThreadPool (including
 * a torture test with nested submits, exception propagation and
 * shutdown-while-busy - the TSan CI leg runs these), the
 * deterministic chunked parallel-for, the DumpSource backends, and
 * the cross-thread-count determinism contract of the attack scans
 * (DESIGN.md §9).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "attack/aes_search.hh"
#include "attack/key_miner.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "exec/cancel.hh"
#include "exec/dump_io.hh"
#include "exec/thread_pool.hh"
#include "memctrl/scrambler.hh"
#include "platform/memory_image.hh"
#include "simd/simd.hh"

namespace coldboot::exec
{
namespace
{

//
// ThreadPool
//

TEST(ThreadPool, ParseThreadCount)
{
    EXPECT_EQ(parseThreadCount("4"), 4u);
    EXPECT_EQ(parseThreadCount("1"), 1u);
    EXPECT_EQ(parseThreadCount("0"), 0u);
    EXPECT_EQ(parseThreadCount(""), 0u);
    EXPECT_EQ(parseThreadCount(nullptr), 0u);
    EXPECT_EQ(parseThreadCount("abc"), 0u);
    EXPECT_EQ(parseThreadCount("4x"), 0u);
    EXPECT_EQ(parseThreadCount("99999"), 1024u); // clamp
}

TEST(ThreadPool, ResolveHonoursOverrideAndEnv)
{
    setThreadOverride(5);
    EXPECT_EQ(resolveThreadCount(), 5u);
    setThreadOverride(0);

    setenv("COLDBOOT_THREADS", "3", 1);
    EXPECT_EQ(resolveThreadCount(), 3u);
    // An explicit override beats the environment.
    setThreadOverride(2);
    EXPECT_EQ(resolveThreadCount(), 2u);
    setThreadOverride(0);
    unsetenv("COLDBOOT_THREADS");

    EXPECT_GE(resolveThreadCount(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    constexpr int kTasks = 2000;
    std::atomic<int> ran{0};
    {
        ThreadPool pool(4);
        ThreadPool::TaskGroup group(pool);
        for (int i = 0; i < kTasks; ++i)
            group.run([&] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        group.wait();
        EXPECT_EQ(ran.load(), kTasks);
        EXPECT_EQ(pool.stats().tasksExecuted(),
                  static_cast<uint64_t>(kTasks));
    }
}

TEST(ThreadPool, ShutdownWhileBusyDrainsQueue)
{
    // Fire-and-forget tasks submitted right before destruction: the
    // graceful-shutdown contract says every one of them still runs.
    constexpr int kTasks = 500;
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < kTasks; ++i)
            pool.submit([&, i] {
                if (i % 50 == 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                ran.fetch_add(1, std::memory_order_relaxed);
            });
    } // dtor joins after the queue is empty
    EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, ExceptionPropagatesToWait)
{
    ThreadPool pool(2);
    ThreadPool::TaskGroup group(pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i)
        group.run([&, i] {
            ran.fetch_add(1);
            if (i == 13)
                throw std::runtime_error("boom 13");
        });
    try {
        group.wait();
        FAIL() << "wait() must rethrow the task exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 13");
    }
    // wait() returns only after every task completed, exception or
    // not - the group is reusable state-wise and all tasks ran.
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, NestedSubmitsDoNotDeadlock)
{
    // Each outer task fans out an inner group and waits on it from a
    // worker thread; the help-while-waiting path must keep everything
    // moving even with more outer tasks than workers.
    ThreadPool pool(2);
    std::atomic<int> leaves{0};
    ThreadPool::TaskGroup outer(pool);
    for (int i = 0; i < 16; ++i)
        outer.run([&] {
            ThreadPool::TaskGroup inner(pool);
            for (int j = 0; j < 8; ++j)
                inner.run([&] { leaves.fetch_add(1); });
            inner.wait();
        });
    outer.wait();
    EXPECT_EQ(leaves.load(), 16 * 8);
}

TEST(ThreadPool, Torture)
{
    // Mixed stress: nested fan-outs, tasks of wildly different
    // length, an exception in flight, and a shutdown racing the last
    // submissions. Run under TSan in CI.
    std::atomic<uint64_t> work{0};
    for (int round = 0; round < 4; ++round) {
        ThreadPool pool(4);
        ThreadPool::TaskGroup group(pool);
        for (int i = 0; i < 128; ++i)
            group.run([&, i] {
                if (i % 3 == 0) {
                    ThreadPool::TaskGroup inner(pool);
                    for (int j = 0; j < 4; ++j)
                        inner.run([&] {
                            work.fetch_add(
                                1, std::memory_order_relaxed);
                        });
                    inner.wait();
                } else if (i % 7 == 0) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                    work.fetch_add(1, std::memory_order_relaxed);
                } else {
                    work.fetch_add(1, std::memory_order_relaxed);
                }
            });
        group.wait();

        // An exception from a nested group surfaces at its wait and
        // must not poison the pool for subsequent batches.
        ThreadPool::TaskGroup faulty(pool);
        faulty.run([] { throw std::runtime_error("torture"); });
        EXPECT_THROW(faulty.wait(), std::runtime_error);

        // Shutdown-while-busy: leave fire-and-forget work queued as
        // the pool is destroyed.
        for (int i = 0; i < 64; ++i)
            pool.submit([&] {
                work.fetch_add(1, std::memory_order_relaxed);
            });
    }
    EXPECT_GT(work.load(), 0u);
}

TEST(ThreadPool, StatsAccountForStolenWork)
{
    ThreadPool pool(4);
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 512; ++i)
        group.run([] {
            std::this_thread::sleep_for(std::chrono::microseconds(20));
        });
    group.wait();
    auto stats = pool.stats();
    EXPECT_EQ(stats.per_worker.size(), 4u);
    EXPECT_EQ(stats.tasksExecuted(), 512u);
    // Steal counters are interleaving-dependent; just require
    // consistency between the two views of the same events.
    EXPECT_GE(stats.tasksStolen(), stats.steals() > 0 ? 1u : 0u);
}

TEST(ThreadPool, ScopedGlobalOverrideSwapsAndRestores)
{
    ThreadPool &original = ThreadPool::global();
    {
        ThreadPool pool(2);
        ThreadPool::ScopedGlobalOverride ov(pool);
        EXPECT_EQ(&ThreadPool::global(), &pool);
        {
            ThreadPool inner_pool(3);
            ThreadPool::ScopedGlobalOverride inner(inner_pool);
            EXPECT_EQ(&ThreadPool::global(), &inner_pool);
        }
        EXPECT_EQ(&ThreadPool::global(), &pool);
    }
    EXPECT_EQ(&ThreadPool::global(), &original);
}

//
// Chunked parallel-for
//

TEST(ParallelFor, ChunkTiling)
{
    EXPECT_EQ(chunkCount(0, 0, 64), 0u);
    EXPECT_EQ(chunkCount(0, 64, 64), 1u);
    EXPECT_EQ(chunkCount(0, 65, 64), 2u);
    EXPECT_EQ(chunkCount(10, 10, 64), 0u);
    EXPECT_EQ(chunkCount(0, 1000, 2000), 1u);

    // Remainder chunk is the short tail, offsets are contiguous.
    auto c0 = chunkAt(100, 300, 128, 0);
    auto c1 = chunkAt(100, 300, 128, 1);
    EXPECT_EQ(c0.begin, 100u);
    EXPECT_EQ(c0.end, 228u);
    EXPECT_EQ(c1.begin, 228u);
    EXPECT_EQ(c1.end, 300u);
    EXPECT_EQ(c1.index, 1u);
}

TEST(ParallelFor, VisitsEveryChunkExactlyOnce)
{
    constexpr uint64_t kEnd = 100000, kGrain = 777;
    const uint64_t n = chunkCount(0, kEnd, kGrain);
    std::vector<std::atomic<int>> visits(n);
    std::atomic<uint64_t> covered{0};

    ThreadPool pool(4);
    parallelForChunks(
        0, kEnd, kGrain,
        [&](const ChunkRange &c) {
            visits[c.index].fetch_add(1);
            covered.fetch_add(c.end - c.begin);
        },
        &pool);

    EXPECT_EQ(covered.load(), kEnd);
    for (uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "chunk " << i;
}

TEST(ParallelFor, ExceptionPropagates)
{
    ThreadPool pool(2);
    EXPECT_THROW(parallelForChunks(
                     0, 10000, 100,
                     [](const ChunkRange &c) {
                         if (c.index == 7)
                             throw std::runtime_error("chunk 7");
                     },
                     &pool),
                 std::runtime_error);
}

TEST(ParallelFor, OrderedReductionIsDeterministic)
{
    // A non-commutative fold (string concatenation) must come out
    // identical to the sequential run at any pool width.
    auto run = [](ThreadPool *pool, bool sequential) {
        std::string out;
        parallelMapReduceChunks<std::string>(
            0, 5000, 97,
            [](const ChunkRange &c) {
                return std::to_string(c.index) + ":" +
                       std::to_string(c.end - c.begin) + ";";
            },
            [&](std::string &&part, const ChunkRange &) {
                out += part;
            },
            pool, sequential);
        return out;
    };

    const std::string expected = run(nullptr, true);
    for (unsigned w : {1u, 2u, 7u}) {
        ThreadPool pool(w);
        EXPECT_EQ(run(&pool, false), expected) << "width " << w;
    }
}

//
// DumpSource
//

class DumpSourceFile
{
  public:
    explicit DumpSourceFile(const std::vector<uint8_t> &bytes)
    {
        // Under the system temp dir: death-test children abort
        // before ~DumpSourceFile, and their leftovers must not land
        // in the repo tree.
        path = (std::filesystem::temp_directory_path() /
                "test_exec_dump.XXXXXX").string();
        int fd = mkstemp(path.data());
        if (fd >= 0) {
            ssize_t n = write(fd, bytes.data(), bytes.size());
            (void)n;
            close(fd);
        }
    }

    ~DumpSourceFile() { std::remove(path.c_str()); }

    std::string path;
};

std::vector<uint8_t>
patternBytes(size_t n)
{
    std::vector<uint8_t> bytes(n);
    Xoshiro256StarStar rng(0xD0D0);
    rng.fillBytes(bytes);
    return bytes;
}

TEST(DumpSource, MemoryBackendViewsMatchInput)
{
    auto bytes = patternBytes(4096);
    MemoryDumpSource src({bytes.data(), bytes.size()});
    EXPECT_EQ(src.size(), 4096u);
    EXPECT_EQ(src.lines(), 64u);
    EXPECT_STREQ(src.backendName(), "memory");
    EXPECT_EQ(src.contiguous().data(), bytes.data());

    ChunkBuffer buf;
    auto view = src.chunk(128, 256, buf);
    EXPECT_EQ(view.data(), bytes.data() + 128); // zero-copy
    EXPECT_EQ(view.size(), 256u);
}

TEST(DumpSource, MmapAndBufferedReturnIdenticalBytes)
{
    auto bytes = patternBytes(64 * 1024);
    DumpSourceFile file(bytes);

    auto mapped = openDumpSource(file.path, DumpBackend::Mmap);
    auto buffered = openDumpSource(file.path, DumpBackend::Buffered);
    EXPECT_STREQ(mapped->backendName(), "mmap");
    EXPECT_STREQ(buffered->backendName(), "buffered");
    EXPECT_EQ(mapped->size(), bytes.size());
    EXPECT_EQ(buffered->size(), bytes.size());

    // mmap exposes the whole file; buffered cannot.
    EXPECT_EQ(mapped->contiguous().size(), bytes.size());
    EXPECT_TRUE(buffered->contiguous().empty());

    ChunkBuffer mbuf, bbuf;
    for (uint64_t off : {uint64_t(0), uint64_t(64), uint64_t(4096),
                         uint64_t(bytes.size() - 192)}) {
        auto mv = mapped->chunk(off, 192, mbuf);
        auto bv = buffered->chunk(off, 192, bbuf);
        ASSERT_EQ(mv.size(), bv.size());
        EXPECT_EQ(std::memcmp(mv.data(), bv.data(), mv.size()), 0)
            << "offset " << off;
        EXPECT_EQ(std::memcmp(mv.data(), bytes.data() + off, 192), 0);
        // Buffered chunks land in 64-byte-aligned scratch.
        EXPECT_EQ(reinterpret_cast<uintptr_t>(bv.data()) % 64, 0u);
    }
}

TEST(DumpSource, PrefetchClampsAtDumpTail)
{
    auto bytes = patternBytes(8192);
    DumpSourceFile file(bytes);
    for (auto backend : {DumpBackend::Mmap, DumpBackend::Buffered}) {
        auto src = openDumpSource(file.path, backend);
        // Hints past or straddling the tail are no-ops, not errors -
        // read-ahead loops prefetch "the next chunk" unguarded.
        src->prefetch(src->size(), 4096);
        src->prefetch(src->size() - 64, 4096);
        src->prefetch(src->size() + 4096, 4096);
        src->prefetch(0, 0);
    }
}

TEST(DumpSource, NoMmapEnvForcesBufferedInAutoMode)
{
    auto bytes = patternBytes(4096);
    DumpSourceFile file(bytes);

    auto plain = openDumpSource(file.path, DumpBackend::Auto);
    EXPECT_STREQ(plain->backendName(), "mmap");

    setenv("COLDBOOT_NO_MMAP", "1", 1);
    auto forced = openDumpSource(file.path, DumpBackend::Auto);
    unsetenv("COLDBOOT_NO_MMAP");
    EXPECT_STREQ(forced->backendName(), "buffered");

    // Explicit Mmap ignores the env knob.
    setenv("COLDBOOT_NO_MMAP", "1", 1);
    auto explicit_mmap = openDumpSource(file.path, DumpBackend::Mmap);
    unsetenv("COLDBOOT_NO_MMAP");
    EXPECT_STREQ(explicit_mmap->backendName(), "mmap");
}

TEST(DumpSource, RejectsBadSizes)
{
    // The process-global pool keeps worker threads alive; a plain
    // fork()-style death test would inherit their locked mutexes and
    // deadlock, so re-exec the statement in a fresh process instead.
    testing::FLAGS_gtest_death_test_style = "threadsafe";

    auto odd = patternBytes(100); // not a multiple of 64
    DumpSourceFile file(odd);
    EXPECT_DEATH(openDumpSource(file.path), "multiple of");
    EXPECT_DEATH(openDumpSource("test_exec_nonexistent.img"),
                 "open");

    DumpSourceFile empty(patternBytes(0));
    EXPECT_DEATH(openDumpSource(empty.path), "nonzero multiple");
    DumpSourceFile torn(patternBytes(64 * 4 + 17)); // mid-line tear
    EXPECT_DEATH(openDumpSource(torn.path), "multiple of");

    auto bytes = patternBytes(128);
    MemoryDumpSource src({bytes.data(), bytes.size()});
    ChunkBuffer buf;
    EXPECT_DEATH(src.chunk(64, 128, buf), "outside");
}

TEST(DumpSource, ChunkBufferAlignsAndGrows)
{
    ChunkBuffer buf;
    EXPECT_EQ(buf.capacity(), 0u);
    uint8_t *p = buf.ensure(100);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
    EXPECT_GE(buf.capacity(), 100u);
    size_t cap = buf.capacity();
    EXPECT_EQ(buf.ensure(50), p); // no shrink, no realloc
    EXPECT_EQ(buf.capacity(), cap);
    uint8_t *q = buf.ensure(1 << 20);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(q) % 64, 0u);
    EXPECT_GE(buf.capacity(), size_t(1) << 20);
}

//
// Determinism contract across thread counts (DESIGN.md §9)
//

/** Dump with planted scrambler keys and one scrambled AES table. */
platform::MemoryImage
buildAttackDump(std::vector<uint8_t> &master_out)
{
    platform::MemoryImage dump(MiB(4));
    Xoshiro256StarStar rng(0x5EED);
    rng.fillBytes(dump.bytesMutable());
    auto out = dump.bytesMutable();

    memctrl::Ddr4Scrambler scr(0xBEEF, 0);
    uint8_t keys[4][64];
    for (unsigned k = 0; k < 4; ++k) {
        scr.poolKey(k * 512, keys[k]);
        for (unsigned copy = 0; copy < 6; ++copy) {
            size_t line = (k * 6 + copy + 11) * 397 % dump.lines();
            std::memcpy(&out[line * 64], keys[k], 64);
        }
    }

    master_out.assign(32, 0);
    Xoshiro256StarStar key_rng(0x1234);
    key_rng.fillBytes(master_out);
    auto sched = crypto::aesExpandKey(master_out);
    uint64_t table_off = (dump.lines() / 3) * 64;
    for (size_t i = 0; i < sched.size(); ++i)
        out[table_off + i] = sched[i] ^ keys[1][i % 64];
    return dump;
}

/** Serialized mining + search output for byte-exact comparison. */
std::string
scanFingerprint(const platform::MemoryImage &dump)
{
    attack::MinerParams miner_params;
    miner_params.scan_limit_bytes = 0;
    auto mined = attack::mineScramblerKeys(dump, miner_params);

    auto found =
        attack::searchAesKeyTables(dump, mined, attack::SearchParams{});

    std::string fp;
    for (const auto &mk : mined) {
        fp.append(reinterpret_cast<const char *>(mk.key.data()),
                  mk.key.size());
        fp += std::to_string(mk.occurrences) + "@" +
              std::to_string(mk.first_offset) + ";";
    }
    for (const auto &rk : found) {
        fp.append(reinterpret_cast<const char *>(rk.master.data()),
                  rk.master.size());
        fp += "@" + std::to_string(rk.table_offset) + ";";
    }
    return fp;
}

TEST(ExecDeterminism, MiningAndSearchIdenticalAcrossWidths)
{
    std::vector<uint8_t> master;
    auto dump = buildAttackDump(master);

    std::string reference;
    for (unsigned w : {1u, 2u, 7u}) {
        ThreadPool pool(w);
        ThreadPool::ScopedGlobalOverride ov(pool);
        std::string fp = scanFingerprint(dump);
        EXPECT_FALSE(fp.empty());
        if (reference.empty())
            reference = fp;
        else
            EXPECT_EQ(fp, reference) << "width " << w;
    }

    // The planted AES master key is actually recovered, not just
    // consistently missed.
    EXPECT_NE(reference.find(std::string(
                  reinterpret_cast<const char *>(master.data()),
                  master.size())),
              std::string::npos);
}

TEST(ExecDeterminism, FingerprintIdenticalAcrossSimdBackendsAndWidths)
{
    // The §15 cross-backend contract, enforced end to end: the full
    // mine + search pipeline must produce byte-identical output under
    // every usable SIMD backend at every pool width. Backends the
    // host cannot run are skipped, not failed (the differential
    // kernel tests in test_simd.cc cover whatever is usable).
    std::vector<uint8_t> master;
    auto dump = buildAttackDump(master);

    std::string reference;
    unsigned exercised = 0;
    for (unsigned i = 0; i < simd::kBackendCount; ++i) {
        auto be = static_cast<simd::Backend>(i);
        if (!simd::backendUsable(be))
            continue;
        simd::ScopedBackend forced(be);
        ASSERT_TRUE(forced.active());
        ++exercised;
        for (unsigned w : {1u, 4u}) {
            ThreadPool pool(w);
            ThreadPool::ScopedGlobalOverride ov(pool);
            std::string fp = scanFingerprint(dump);
            EXPECT_FALSE(fp.empty());
            if (reference.empty())
                reference = fp;
            else
                EXPECT_EQ(fp, reference)
                    << simd::backendName(be) << " width " << w;
        }
    }
    EXPECT_GE(exercised, 1u); // scalar is always usable

    // Identical AND correct: the planted master key is in there.
    EXPECT_NE(reference.find(std::string(
                  reinterpret_cast<const char *>(master.data()),
                  master.size())),
              std::string::npos);
}

TEST(ExecDeterminism, EnvThreadCountMatchesExplicitPools)
{
    std::vector<uint8_t> master;
    auto dump = buildAttackDump(master);

    ThreadPool serial(1);
    std::string reference;
    {
        ThreadPool::ScopedGlobalOverride ov(serial);
        reference = scanFingerprint(dump);
    }

    // The COLDBOOT_THREADS env var is the ctest-facing knob; a pool
    // sized through it must reproduce the serial fingerprint.
    setenv("COLDBOOT_THREADS", "7", 1);
    ThreadPool env_pool(0);
    unsetenv("COLDBOOT_THREADS");
    EXPECT_EQ(env_pool.workerCount(), 7u);
    ThreadPool::ScopedGlobalOverride ov(env_pool);
    EXPECT_EQ(scanFingerprint(dump), reference);
}

//
// Cooperative cancellation (exec/cancel.hh)
//

TEST(CancelToken, CheckpointThrowsOnlyOnceRaised)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.checkpoint());
    checkpointIfCancellable(&token); // still lowered
    checkpointIfCancellable(nullptr); // opt-out path

    token.requestCancel();
    token.requestCancel(); // idempotent
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(token.checkpoint(), CancelledError);
    EXPECT_THROW(checkpointIfCancellable(&token), CancelledError);
    checkpointIfCancellable(nullptr); // null stays a no-op
}

TEST(CancelToken, MidScanCancelUnwindsParallelFanout)
{
    // Raise the token from inside one chunk of a parallel map: every
    // later checkpoint (including the raising chunk's own) must
    // unwind the whole fan-out as CancelledError, exactly like a
    // workload exception.
    for (unsigned w : {1u, 4u}) {
        ThreadPool pool(w);
        CancelToken token;
        EXPECT_THROW(
            parallelMapReduceChunks<int>(
                0, 100000, 1000,
                [&](const ChunkRange &c) {
                    if (c.index == 3)
                        token.requestCancel();
                    checkpointIfCancellable(&token);
                    return 1;
                },
                [](int &&, const ChunkRange &) {}, &pool),
            CancelledError)
            << "width " << w;
    }
}

TEST(CancelToken, PreRaisedTokenAbortsAttackScans)
{
    std::vector<uint8_t> master;
    auto dump = buildAttackDump(master);

    attack::MinerParams miner_params;
    miner_params.scan_limit_bytes = 0;
    CancelToken mine_cancel;
    mine_cancel.requestCancel();
    miner_params.cancel = &mine_cancel;
    EXPECT_THROW(attack::mineScramblerKeys(dump, miner_params),
                 CancelledError);

    miner_params.cancel = nullptr;
    auto mined = attack::mineScramblerKeys(dump, miner_params);
    ASSERT_FALSE(mined.empty());

    attack::SearchParams search_params;
    CancelToken search_cancel;
    search_cancel.requestCancel();
    search_params.cancel = &search_cancel;
    EXPECT_THROW(
        attack::searchAesKeyTables(dump, mined, search_params),
        CancelledError);
}

TEST(CancelToken, UncancelledRunMatchesNoTokenRun)
{
    // A token that is never raised must not perturb results - the
    // determinism contract treats cancellation as pure observation.
    std::vector<uint8_t> master;
    auto dump = buildAttackDump(master);

    attack::MinerParams plain;
    plain.scan_limit_bytes = 0;
    auto expected = attack::mineScramblerKeys(dump, plain);

    CancelToken token;
    attack::MinerParams watched = plain;
    watched.cancel = &token;
    auto got = attack::mineScramblerKeys(dump, watched);

    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].key, expected[i].key);
        EXPECT_EQ(got[i].occurrences, expected[i].occurrences);
        EXPECT_EQ(got[i].first_offset, expected[i].first_offset);
    }
}

//
// Buffered pread shim: short reads and EINTR (exec/dump_io.hh)
//

/** Counters steered by the function-pointer shim (no captures). */
std::atomic<uint64_t> g_shim_calls{0};
std::atomic<uint64_t> g_shim_eintr_left{0};
std::atomic<uint64_t> g_shim_max_bytes{0};

ssize_t
flakyPread(int fd, void *buf, size_t count, off_t offset)
{
    g_shim_calls.fetch_add(1, std::memory_order_relaxed);
    uint64_t left = g_shim_eintr_left.load(std::memory_order_relaxed);
    while (left > 0) {
        if (g_shim_eintr_left.compare_exchange_weak(left, left - 1)) {
            errno = EINTR;
            return -1;
        }
    }
    uint64_t cap = g_shim_max_bytes.load(std::memory_order_relaxed);
    if (cap > 0 && count > cap)
        count = cap;
    return pread(fd, buf, count, offset);
}

/** Installs flakyPread for one test; always restores real pread. */
class PreadShimGuard
{
  public:
    PreadShimGuard(uint64_t eintr_count, uint64_t max_bytes)
    {
        g_shim_calls.store(0);
        g_shim_eintr_left.store(eintr_count);
        g_shim_max_bytes.store(max_bytes);
        detail::setPreadShimForTest(&flakyPread);
    }

    ~PreadShimGuard() { detail::setPreadShimForTest(nullptr); }
};

TEST(DumpSource, BufferedChunkRetriesThroughEintr)
{
    auto bytes = patternBytes(16 * 1024);
    DumpSourceFile file(bytes);
    auto src = openDumpSource(file.path, DumpBackend::Buffered);

    PreadShimGuard shim(/*eintr_count=*/5, /*max_bytes=*/0);
    ChunkBuffer buf;
    auto view = src->chunk(4096, 2048, buf);
    ASSERT_EQ(view.size(), 2048u);
    EXPECT_EQ(std::memcmp(view.data(), bytes.data() + 4096, 2048), 0);
    // 5 interrupted attempts plus at least one real read.
    EXPECT_GE(g_shim_calls.load(), 6u);
}

TEST(DumpSource, BufferedChunkAssemblesShortReads)
{
    auto bytes = patternBytes(16 * 1024);
    DumpSourceFile file(bytes);
    auto src = openDumpSource(file.path, DumpBackend::Buffered);

    // Every pread returns at most 96 bytes - an unaligned trickle, so
    // the accumulation loop must stitch split lines back together.
    PreadShimGuard shim(/*eintr_count=*/0, /*max_bytes=*/96);
    ChunkBuffer buf;
    auto view = src->chunk(128, 4096, buf);
    ASSERT_EQ(view.size(), 4096u);
    EXPECT_EQ(std::memcmp(view.data(), bytes.data() + 128, 4096), 0);
    EXPECT_GE(g_shim_calls.load(), 4096u / 96u); // really trickled
    EXPECT_EQ(reinterpret_cast<uintptr_t>(view.data()) % 64, 0u);
}

TEST(DumpSource, BufferedChunkSurvivesEintrDuringShortReads)
{
    auto bytes = patternBytes(8 * 1024);
    DumpSourceFile file(bytes);
    auto src = openDumpSource(file.path, DumpBackend::Buffered);

    PreadShimGuard shim(/*eintr_count=*/3, /*max_bytes=*/64);
    ChunkBuffer buf;
    auto view = src->chunk(0, 1024, buf);
    ASSERT_EQ(view.size(), 1024u);
    EXPECT_EQ(std::memcmp(view.data(), bytes.data(), 1024), 0);
}

TEST(DumpSource, ShimRestoreReturnsToRealPread)
{
    auto bytes = patternBytes(4096);
    DumpSourceFile file(bytes);
    auto src = openDumpSource(file.path, DumpBackend::Buffered);

    { PreadShimGuard shim(0, 32); }
    g_shim_calls.store(0);
    ChunkBuffer buf;
    auto view = src->chunk(0, 4096, buf);
    ASSERT_EQ(view.size(), 4096u);
    EXPECT_EQ(std::memcmp(view.data(), bytes.data(), 4096), 0);
    EXPECT_EQ(g_shim_calls.load(), 0u); // shim really uninstalled
}

} // anonymous namespace
} // namespace coldboot::exec
