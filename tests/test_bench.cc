/**
 * @file
 * Unit tests for the benchmark harness statistics kernel, the
 * perf_event_open fallback path, the BENCH.json emitter, and the
 * logging runtime configuration.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "obs/bench.hh"
#include "obs/json.hh"
#include "obs/perf.hh"

using namespace coldboot;
using namespace coldboot::obs::bench;

//
// Statistics kernel
//

TEST(BenchStats, PercentileKnownValues)
{
    std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(sorted, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(sorted, 100), 4.0);
    EXPECT_DOUBLE_EQ(percentile(sorted, 50), 2.5);
    EXPECT_DOUBLE_EQ(percentile(sorted, 25), 1.75);
}

TEST(BenchStats, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(BenchStats, MadKnownValues)
{
    // median = 3, |x - 3| = {2,1,0,1,2}, MAD = 1.
    EXPECT_DOUBLE_EQ(medianAbsDeviation({1.0, 2.0, 3.0, 4.0, 5.0}),
                     1.0);
    // An outlier barely moves the MAD (that's the point).
    EXPECT_DOUBLE_EQ(
        medianAbsDeviation({1.0, 2.0, 3.0, 4.0, 1000.0}), 1.0);
    EXPECT_DOUBLE_EQ(medianAbsDeviation({}), 0.0);
}

TEST(BenchStats, SummarizeKnownValues)
{
    SampleStats s = summarize({2.0, 4.0, 6.0, 8.0});
    EXPECT_EQ(s.n, 4u);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 8.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 5.0);
    EXPECT_DOUBLE_EQ(s.mad, 2.0);
    // Population stddev of {2,4,6,8}: sqrt(5).
    EXPECT_NEAR(s.stddev, std::sqrt(5.0), 1e-12);
    // The CI must bracket the median and stay within the range.
    EXPECT_LE(s.ci95_lo, s.median);
    EXPECT_GE(s.ci95_hi, s.median);
    EXPECT_GE(s.ci95_lo, s.min);
    EXPECT_LE(s.ci95_hi, s.max);
}

TEST(BenchStats, BootstrapDeterministicUnderFixedSeed)
{
    std::vector<double> samples{3.1, 2.9, 3.0, 3.3, 2.8,
                                3.2, 3.0, 2.7, 3.4, 3.1};
    SampleStats a = summarize(samples, 2000, 42);
    SampleStats b = summarize(samples, 2000, 42);
    EXPECT_DOUBLE_EQ(a.ci95_lo, b.ci95_lo);
    EXPECT_DOUBLE_EQ(a.ci95_hi, b.ci95_hi);
    // A different seed is allowed to move the interval (and with
    // these samples it does at least once over two tries).
    SampleStats c = summarize(samples, 2000, 43);
    EXPECT_LE(c.ci95_lo, c.ci95_hi);
}

TEST(BenchStats, SingleSampleDegenerates)
{
    SampleStats s = summarize({5.0});
    EXPECT_EQ(s.n, 1u);
    EXPECT_DOUBLE_EQ(s.median, 5.0);
    EXPECT_DOUBLE_EQ(s.mad, 0.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.ci95_lo, 5.0);
    EXPECT_DOUBLE_EQ(s.ci95_hi, 5.0);
}

TEST(BenchStats, ZeroResamplesDisablesCi)
{
    SampleStats s = summarize({1.0, 2.0, 3.0}, 0);
    EXPECT_DOUBLE_EQ(s.ci95_lo, s.median);
    EXPECT_DOUBLE_EQ(s.ci95_hi, s.median);
}

//
// Perf counter fallback
//

TEST(PerfCounters, DisableEnvForcesFallback)
{
    setenv("COLDBOOT_PERF_DISABLE", "1", 1);
    obs::PerfCounters counters;
    unsetenv("COLDBOOT_PERF_DISABLE");
    EXPECT_FALSE(counters.available());
    EXPECT_FALSE(counters.unavailableReason().empty());
    // start/stop must still be safe to call.
    counters.start();
    obs::PerfSample sample = counters.stop();
    EXPECT_FALSE(sample.available);
}

//
// Harness + BENCH.json emitter
//

namespace
{

void
trivialBench(BenchContext &ctx)
{
    volatile unsigned sink = 0;
    for (unsigned i = 0; i < 1000; ++i)
        sink = sink + i;
    ctx.setBytesProcessed(4096);
    ctx.setItemsProcessed(1000);
    ctx.report("trivial.answer", 42.0, "the answer");
}

} // anonymous namespace

TEST(BenchHarness, RunBenchAndEmitJson)
{
    // Force the portable fallback so the "counters unavailable" JSON
    // shape is covered deterministically even where perf_event_open
    // works.
    setenv("COLDBOOT_PERF_DISABLE", "1", 1);

    BenchInfo info{"trivial", &trivialBench};
    RunConfig config;
    config.repetitions = 3;
    config.warmup = 1;
    config.quiet = true;
    BenchResult result = runBench(info, config);
    unsetenv("COLDBOOT_PERF_DISABLE");

    EXPECT_EQ(result.name, "trivial");
    EXPECT_EQ(result.wall_ns.n, 3u);
    EXPECT_GT(result.wall_ns.median, 0.0);
    EXPECT_GT(result.bytes_per_second, 0.0);
    EXPECT_GT(result.items_per_second, 0.0);
    EXPECT_FALSE(result.counters.available);
    EXPECT_FALSE(result.counters_unavailable_reason.empty());
    EXPECT_GT(result.max_rss_kib, 0u);
    ASSERT_EQ(result.reports.count("trivial.answer"), 1u);
    EXPECT_DOUBLE_EQ(result.reports.at("trivial.answer").value,
                     42.0);

    std::string json =
        resultsToJson(config, collectEnvironment(), {result});
    auto doc = obs::json::parse(json);
    ASSERT_TRUE(doc.has_value()) << json;

    const auto *schema = doc->find("schema_version");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->number, benchJsonSchemaVersion);

    const auto *env = doc->find("environment");
    ASSERT_NE(env, nullptr);
    for (const char *key : {"compiler", "build_type", "cxx_flags",
                            "cpu", "os", "git_sha"})
        EXPECT_NE(env->find(key), nullptr) << key;

    const auto *benches = doc->find("benches");
    ASSERT_NE(benches, nullptr);
    ASSERT_TRUE(benches->isArray());
    ASSERT_EQ(benches->array.size(), 1u);
    const auto &bench = benches->array[0];
    EXPECT_EQ(bench.find("name")->str, "trivial");

    const auto *wall = bench.find("wall_ns");
    ASSERT_NE(wall, nullptr);
    for (const char *key : {"n", "min", "max", "mean", "stddev",
                            "median", "mad", "ci95_lo", "ci95_hi"})
        EXPECT_NE(wall->find(key), nullptr) << key;

    // The fallback must be explicit in the document, with a reason.
    const auto *counters = bench.find("counters");
    ASSERT_NE(counters, nullptr);
    const auto *available = counters->find("available");
    ASSERT_NE(available, nullptr);
    EXPECT_TRUE(available->isBool());
    EXPECT_FALSE(available->boolean);
    const auto *reason = counters->find("reason");
    ASSERT_NE(reason, nullptr);
    EXPECT_FALSE(reason->str.empty());

    const auto *reports = bench.find("reports");
    ASSERT_NE(reports, nullptr);
    const auto *answer = reports->find("trivial.answer");
    ASSERT_NE(answer, nullptr);
    EXPECT_DOUBLE_EQ(answer->find("value")->number, 42.0);
    EXPECT_EQ(answer->find("desc")->str, "the answer");
}

TEST(BenchHarness, RegistryHoldsRegisteredBench)
{
    size_t before = benchRegistry().size();
    registerBench("registry_probe", &trivialBench);
    ASSERT_EQ(benchRegistry().size(), before + 1);
    EXPECT_EQ(benchRegistry().back().name, "registry_probe");
    benchRegistry().pop_back(); // leave the registry as we found it
}

//
// Logging runtime configuration
//

namespace
{

/** RAII: restore log level/format after a test. */
struct LogStateGuard
{
    LogLevel level = logLevel();
    LogFormat format = logFormat();
    ~LogStateGuard()
    {
        setLogLevel(level);
        setLogFormat(format);
    }
};

} // anonymous namespace

TEST(Logging, EnvLevelParsing)
{
    LogStateGuard guard;
    setenv("COLDBOOT_LOG_LEVEL", "quiet", 1);
    detail::reinitLoggingFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setenv("COLDBOOT_LOG_LEVEL", "warn", 1);
    detail::reinitLoggingFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setenv("COLDBOOT_LOG_LEVEL", "2", 1);
    detail::reinitLoggingFromEnv();
    EXPECT_EQ(logLevel(), LogLevel::Info);
    unsetenv("COLDBOOT_LOG_LEVEL");
}

TEST(Logging, EnvFormatParsing)
{
    LogStateGuard guard;
    setenv("COLDBOOT_LOG_FORMAT", "json", 1);
    detail::reinitLoggingFromEnv();
    EXPECT_EQ(logFormat(), LogFormat::JsonLines);
    setenv("COLDBOOT_LOG_FORMAT", "timestamped", 1);
    detail::reinitLoggingFromEnv();
    EXPECT_EQ(logFormat(), LogFormat::Timestamped);
    setenv("COLDBOOT_LOG_FORMAT", "plain", 1);
    detail::reinitLoggingFromEnv();
    EXPECT_EQ(logFormat(), LogFormat::Plain);
    unsetenv("COLDBOOT_LOG_FORMAT");
}

TEST(Logging, QuietSuppressesWarn)
{
    LogStateGuard guard;
    setLogLevel(LogLevel::Quiet);
    testing::internal::CaptureStderr();
    cb_warn("should not appear");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Logging, JsonLinesFormat)
{
    LogStateGuard guard;
    setLogLevel(LogLevel::Info);
    setLogFormat(LogFormat::JsonLines);
    testing::internal::CaptureStdout();
    cb_inform("hello \"quoted\"\nline");
    std::string out = testing::internal::GetCapturedStdout();
    auto doc = obs::json::parse(out);
    ASSERT_TRUE(doc.has_value()) << out;
    EXPECT_EQ(doc->find("level")->str, "info");
    EXPECT_EQ(doc->find("msg")->str, "hello \"quoted\"\nline");
    EXPECT_FALSE(doc->find("ts")->str.empty());
}

TEST(Logging, TimestampedFormat)
{
    LogStateGuard guard;
    setLogLevel(LogLevel::Warn);
    setLogFormat(LogFormat::Timestamped);
    testing::internal::CaptureStderr();
    cb_warn("stamped");
    std::string out = testing::internal::GetCapturedStderr();
    // "YYYY-MM-DDTHH:MM:SS.mmm warn: stamped\n"
    ASSERT_GE(out.size(), 24u);
    EXPECT_EQ(out[4], '-');
    EXPECT_EQ(out[10], 'T');
    EXPECT_NE(out.find(" warn: stamped\n"), std::string::npos) << out;
}

TEST(Logging, ConcurrentLinesDoNotInterleave)
{
    LogStateGuard guard;
    setLogLevel(LogLevel::Warn);
    setLogFormat(LogFormat::Plain);
    testing::internal::CaptureStderr();
    constexpr int threads = 8, lines = 50;
    // coldboot-lint: allow(no-raw-thread) -- stressing the logger below the ThreadPool layer
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([t] {
            for (int i = 0; i < lines; ++i)
                cb_warn("thread-%d-line-%d-end", t, i);
        });
    for (auto &th : pool)
        th.join();
    std::string out = testing::internal::GetCapturedStderr();

    std::istringstream stream(out);
    std::string line;
    int count = 0;
    while (std::getline(stream, line)) {
        ++count;
        EXPECT_TRUE(line.rfind("warn: thread-", 0) == 0 &&
                    line.find("-end") != std::string::npos)
            << "mangled line: " << line;
    }
    EXPECT_EQ(count, threads * lines);
}
