/**
 * @file
 * Litmus test unit tests: the scrambler-key invariant test and the
 * AES key litmus (partial expansion) test, including decay tolerance
 * and false-positive behaviour.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "attack/litmus.hh"
#include "common/rng.hh"
#include "crypto/aes.hh"
#include "memctrl/scrambler.hh"

namespace coldboot::attack
{
namespace
{

using crypto::AesKeySize;

std::array<uint8_t, 64>
poolKeyOf(uint64_t seed, unsigned idx)
{
    memctrl::Ddr4Scrambler s(seed, 0);
    std::array<uint8_t, 64> key;
    s.poolKey(idx, key.data());
    return key;
}

TEST(ScramblerLitmus, AcceptsEveryRealKey)
{
    memctrl::Ddr4Scrambler s(0x51ab, 0);
    uint8_t key[64];
    for (unsigned idx = 0; idx < 4096; idx += 7) {
        s.poolKey(idx, key);
        ASSERT_EQ(scramblerKeyLitmusScore({key, 64}), 0u) << idx;
    }
}

TEST(ScramblerLitmus, AcceptsXorOfTwoRealKeys)
{
    // Dumps taken through a second scrambler show K1 ^ K2; the
    // litmus must still pass (the invariants are linear).
    auto k1 = poolKeyOf(111, 42);
    auto k2 = poolKeyOf(222, 42);
    std::array<uint8_t, 64> x;
    for (int i = 0; i < 64; ++i)
        x[i] = k1[i] ^ k2[i];
    EXPECT_EQ(scramblerKeyLitmusScore(x), 0u);
}

TEST(ScramblerLitmus, RejectsRandomBlocks)
{
    Xoshiro256StarStar rng(1);
    std::array<uint8_t, 64> block;
    int passes = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        rng.fillBytes(block);
        passes += scramblerKeyLitmus(block, 32);
    }
    EXPECT_EQ(passes, 0);
}

TEST(ScramblerLitmus, ToleratesModestDecay)
{
    auto key = poolKeyOf(7, 100);
    Xoshiro256StarStar rng(2);
    // Flip 8 random bits (a heavily decayed copy).
    for (int i = 0; i < 8; ++i) {
        unsigned bit = static_cast<unsigned>(rng.nextBelow(512));
        key[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    EXPECT_FALSE(scramblerKeyLitmus(key, 0));
    EXPECT_TRUE(scramblerKeyLitmus(key, 32));
}

TEST(ScramblerLitmus, ConstantBlocksPassButAreFlagged)
{
    std::array<uint8_t, 64> zeros{};
    EXPECT_TRUE(scramblerKeyLitmus(zeros, 0));
    EXPECT_TRUE(isConstantBlock(zeros));
    std::array<uint8_t, 64> ffs;
    ffs.fill(0xff);
    EXPECT_TRUE(scramblerKeyLitmus(ffs, 0));
    EXPECT_TRUE(isConstantBlock(ffs));
}

TEST(ScramblerLitmus, ScoreCountsMismatchBits)
{
    auto key = poolKeyOf(9, 5);
    key[0] ^= 0x01; // one flipped bit
    unsigned score = scramblerKeyLitmusScore(key);
    // Byte 0 belongs to word W0, which appears in 3 of the 4
    // equations for its 16-byte group.
    EXPECT_GE(score, 1u);
    EXPECT_LE(score, 3u);
}

TEST(EntropyGuard, SchedulesPassJunkFails)
{
    Xoshiro256StarStar rng(3);
    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);
    // Every 64-byte window of a real schedule passes.
    for (size_t off = 0; off + 64 <= sched.size(); off += 16)
        EXPECT_TRUE(plausibleScheduleEntropy({&sched[off], 64}));

    std::vector<uint8_t> zeros(64, 0);
    EXPECT_FALSE(plausibleScheduleEntropy(zeros));
    std::vector<uint8_t> sparse(64, 0);
    sparse[5] = 0xff;
    sparse[40] = 0x0f;
    EXPECT_FALSE(plausibleScheduleEntropy(sparse));
}

TEST(AesLitmus, PlacementCounts)
{
    EXPECT_EQ(aesLitmusPlacements(AesKeySize::Aes256), 12u);
    EXPECT_EQ(aesLitmusPlacements(AesKeySize::Aes192), 10u);
    EXPECT_EQ(aesLitmusPlacements(AesKeySize::Aes128), 8u);
}

/** Parameterized over AES variants. */
class AesLitmusAllSizes
    : public ::testing::TestWithParam<AesKeySize>
{
};

TEST_P(AesLitmusAllSizes, DetectsEveryAlignedWindow)
{
    AesKeySize ks = GetParam();
    Xoshiro256StarStar rng(static_cast<uint64_t>(ks));
    std::vector<uint8_t> key(static_cast<size_t>(ks));
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);

    for (unsigned placement = 0;
         placement < aesLitmusPlacements(ks); ++placement) {
        size_t byte_off = placement * 16;
        auto hit = aesKeyLitmus({&sched[byte_off], 64}, ks, 0);
        ASSERT_TRUE(hit.has_value()) << "placement " << placement;
        EXPECT_EQ(hit->start_word, placement * 4);
        EXPECT_EQ(hit->bit_errors, 0u);
    }
}

TEST_P(AesLitmusAllSizes, RejectsRandomBlocks)
{
    AesKeySize ks = GetParam();
    Xoshiro256StarStar rng(99);
    std::array<uint8_t, 64> block;
    int passes = 0;
    for (int trial = 0; trial < 1000; ++trial) {
        rng.fillBytes(block);
        passes += aesKeyLitmus(block, ks, 32).has_value();
    }
    EXPECT_EQ(passes, 0);
}

TEST_P(AesLitmusAllSizes, ToleratesDecayedBits)
{
    AesKeySize ks = GetParam();
    Xoshiro256StarStar rng(17);
    std::vector<uint8_t> key(static_cast<size_t>(ks));
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);

    std::array<uint8_t, 64> block;
    memcpy(block.data(), &sched[16], 64);
    // Flip 4 bits.
    for (int i = 0; i < 4; ++i) {
        unsigned bit = static_cast<unsigned>(rng.nextBelow(512));
        block[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    auto hit = aesKeyLitmus(block, ks, 40);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->start_word, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllKeySizes, AesLitmusAllSizes,
                         ::testing::Values(AesKeySize::Aes128,
                                           AesKeySize::Aes192,
                                           AesKeySize::Aes256));

TEST(AesLitmus, WrongPlacementNotReported)
{
    // A block from placement 2 must not be attributed elsewhere
    // (the Rcon phase pins it down).
    Xoshiro256StarStar rng(23);
    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    auto sched = crypto::aesExpandKey(key);
    auto hit = aesKeyLitmus({&sched[32], 64}, AesKeySize::Aes256, 0);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->start_word, 8u);
}

TEST(ScheduleBackward, RecoversHeadFromAnyWindow)
{
    Xoshiro256StarStar rng(31);
    for (size_t key_len : {16u, 24u, 32u}) {
        std::vector<uint8_t> key(key_len);
        rng.fillBytes(key);
        auto sched = crypto::aesExpandKey(key);
        unsigned nk = static_cast<unsigned>(key_len) / 4;
        unsigned total = static_cast<unsigned>(sched.size()) / 4;

        std::vector<uint32_t> words(total);
        for (unsigned i = 0; i < total; ++i)
            words[i] = crypto::aesWordFromBytes(&sched[4 * i]);

        for (unsigned i0 = nk; i0 + nk <= total; i0 += 3) {
            std::span<const uint32_t> window(&words[i0], nk);
            auto head =
                crypto::aesScheduleBackward(window, i0, i0, nk);
            ASSERT_EQ(head.size(), i0);
            for (unsigned i = 0; i < i0; ++i)
                ASSERT_EQ(head[i], words[i])
                    << "key_len=" << key_len << " i0=" << i0;
        }
    }
}

} // anonymous namespace
} // namespace coldboot::attack
