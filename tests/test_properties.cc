/**
 * @file
 * Cross-module property tests, parameterized over seeds: invariants
 * that must hold for any seed, workload, or temperature - the
 * randomized sweep layer on top of the per-module unit tests.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "attack/key_miner.hh"
#include "attack/litmus.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "crypto/chacha.hh"
#include "crypto/ctr.hh"
#include "dram/decay_model.hh"
#include "dram/dram_module.hh"
#include "memctrl/lfsr.hh"
#include "memctrl/memory_controller.hh"
#include "memctrl/scrambler.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"

namespace coldboot
{
namespace
{

using memctrl::CpuGeneration;
using platform::BiosConfig;
using platform::cpuModelByName;
using platform::Machine;

/** Seed-parameterized fixture. */
class SeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeedSweep, MachineMemoryIsConsistentUnderRandomTraffic)
{
    uint64_t seed = GetParam();
    Machine m(cpuModelByName("i5-6400"), BiosConfig{}, 1, seed);
    m.installDimm(0, std::make_shared<dram::DramModule>(
                         dram::Generation::DDR4, KiB(256),
                         dram::DecayParams{}, seed + 1));
    m.boot();

    // Shadow model: random writes then verify every read.
    std::vector<uint8_t> shadow(KiB(256), 0);
    Xoshiro256StarStar rng(seed + 2);
    // Capture the boot pollution first.
    platform::MemoryImage base = m.dumpMemory();
    std::copy(base.bytes().begin(), base.bytes().end(),
              shadow.begin());

    for (int op = 0; op < 200; ++op) {
        uint64_t addr = rng.nextBelow(KiB(256) / 64) * 64;
        std::vector<uint8_t> data(64);
        rng.fillBytes(data);
        m.writePhys(addr, data);
        std::copy(data.begin(), data.end(),
                  shadow.begin() + static_cast<ptrdiff_t>(addr));
    }
    platform::MemoryImage final_view = m.dumpMemory();
    ASSERT_EQ(0, memcmp(final_view.bytes().data(), shadow.data(),
                        shadow.size()));
}

TEST_P(SeedSweep, Ddr4KeysChangeWithAnySeed)
{
    uint64_t seed = GetParam();
    memctrl::Ddr4Scrambler a(seed, 0), b(seed + 1, 0);
    uint8_t ka[64], kb[64];
    int equal_keys = 0;
    for (unsigned idx = 0; idx < 256; ++idx) {
        a.poolKey(idx, ka);
        b.poolKey(idx, kb);
        equal_keys += memcmp(ka, kb, 64) == 0;
    }
    EXPECT_EQ(equal_keys, 0);
}

TEST_P(SeedSweep, MinerIsIdempotent)
{
    uint64_t seed = GetParam();
    platform::MemoryImage dump(KiB(256));
    Xoshiro256StarStar rng(seed);
    rng.fillBytes(dump.bytesMutable());
    memctrl::Ddr4Scrambler scr(seed, 0);
    auto bytes = dump.bytesMutable();
    for (unsigned k = 0; k < 16; ++k) {
        uint8_t key[64];
        scr.poolKey(k * 7, key);
        for (unsigned c = 0; c < 3; ++c)
            memcpy(&bytes[((k * 3 + c) * 53 % dump.lines()) * 64],
                   key, 64);
    }
    auto first = attack::mineScramblerKeys(dump);
    auto second = attack::mineScramblerKeys(dump);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].key, second[i].key);
        EXPECT_EQ(first[i].occurrences, second[i].occurrences);
    }
}

TEST_P(SeedSweep, ScheduleForwardBackwardInverse)
{
    uint64_t seed = GetParam();
    Xoshiro256StarStar rng(seed);
    for (size_t key_len : {16u, 24u, 32u}) {
        std::vector<uint8_t> key(key_len);
        rng.fillBytes(key);
        auto sched = crypto::aesExpandKey(key);
        unsigned nk = static_cast<unsigned>(key_len) / 4;
        unsigned total = static_cast<unsigned>(sched.size()) / 4;
        std::vector<uint32_t> words(total);
        for (unsigned i = 0; i < total; ++i)
            words[i] = crypto::aesWordFromBytes(&sched[4 * i]);

        // forward(backward(window)) == identity at every anchor.
        unsigned i0 = nk + static_cast<unsigned>(
                               rng.nextBelow(total - 2 * nk));
        std::span<const uint32_t> window(&words[i0], nk);
        auto head = crypto::aesScheduleBackward(window, i0, nk, nk);
        auto rebuilt = crypto::aesScheduleContinue(
            head, i0, nk, nk);
        for (unsigned k = 0; k < nk; ++k)
            ASSERT_EQ(rebuilt[k], words[i0 + k]);
    }
}

TEST_P(SeedSweep, DecayNeverRegeneratesData)
{
    // Decay moves cells toward ground state only: applying decay
    // twice never "unflips" a bit back toward the stored image.
    uint64_t seed = GetParam();
    dram::DecayModel model({}, seed);
    std::vector<uint8_t> data(KiB(64));
    Xoshiro256StarStar rng(seed + 1);
    rng.fillBytes(data);
    auto original = data;

    model.applyDecay(data, 2.0, -25.0);
    auto after_first = data;
    model.applyDecay(data, 2.0, -25.0);

    // A bit that already decayed to ground cannot return to the
    // original value: any position differing from original in
    // after_first must still differ (or equal ground) afterwards.
    for (size_t i = 0; i < data.size(); ++i) {
        uint8_t changed_then = original[i] ^ after_first[i];
        uint8_t reverted = changed_then & ~(original[i] ^ data[i]);
        ASSERT_EQ(reverted, 0) << "byte " << i;
    }
}

TEST_P(SeedSweep, ChaChaAndAesKeystreamsUncorrelated)
{
    uint64_t seed = GetParam();
    Xoshiro256StarStar rng(seed);
    std::vector<uint8_t> key32(32), key16(16), nonce(8);
    rng.fillBytes(key32);
    rng.fillBytes(key16);
    rng.fillBytes(nonce);
    crypto::ChaCha chacha(key32, nonce, 8);
    crypto::AesCtr aes(key16, nonce);

    uint8_t a[64], b[64];
    chacha.keystreamBlock(1, a);
    aes.lineKeystream(1, b);
    size_t dist = hammingDistance({a, 64}, {b, 64});
    EXPECT_GT(dist, 180u);
    EXPECT_LT(dist, 332u);
}

TEST_P(SeedSweep, LfsrLongPeriod)
{
    uint64_t seed = GetParam();
    memctrl::Lfsr lfsr(memctrl::Lfsr::taps32, 32, seed);
    uint64_t initial = lfsr.state();
    int steps = 0;
    do {
        lfsr.stepBit();
        ++steps;
    } while (lfsr.state() != initial && steps < 1 << 20);
    // No short cycles from any starting state.
    EXPECT_GE(steps, 1 << 20);
}

TEST_P(SeedSweep, WorkloadCompositionTracksParams)
{
    uint64_t seed = GetParam();
    platform::WorkloadParams wp;
    wp.zero_fraction = 0.5;
    wp.text_fraction = 0.2;
    wp.heap_fraction = 0.2;
    wp.random_fraction = 0.1;
    double zf = platform::zeroLineFraction(wp, seed, 300);
    // Zero pages plus intra-heap zero lines.
    EXPECT_GT(zf, 0.40);
    EXPECT_LT(zf, 0.75);
}

TEST_P(SeedSweep, ScramblerLitmusClosedUnderXor)
{
    // The invariants are linear: XOR of any two valid keys is valid.
    uint64_t seed = GetParam();
    memctrl::Ddr4Scrambler s1(seed, 0), s2(seed + 99, 1);
    Xoshiro256StarStar rng(seed);
    for (int trial = 0; trial < 32; ++trial) {
        uint8_t a[64], b[64], x[64];
        s1.poolKey(static_cast<unsigned>(rng.nextBelow(4096)), a);
        s2.poolKey(static_cast<unsigned>(rng.nextBelow(4096)), b);
        for (int i = 0; i < 64; ++i)
            x[i] = static_cast<uint8_t>(a[i] ^ b[i]);
        ASSERT_EQ(attack::scramblerKeyLitmusScore({x, 64}), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 42ull, 1337ull,
                                           0xDEADBEEFull,
                                           0x123456789ABCDEFull));

} // anonymous namespace
} // namespace coldboot
