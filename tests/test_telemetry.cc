/**
 * @file
 * Live telemetry plane tests: ring-buffer storage, sampler
 * delta/EWMA math, Prometheus text rendering + validation, the
 * progress/ETA tracker, the json::escape control-char/UTF-8
 * contract, and the embedded HTTP server exercised over real
 * sockets - including a concurrent-scrape suite that TSan runs in
 * CI against live counter traffic.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.hh"
#include "obs/export.hh"
#include "obs/http.hh"
#include "obs/json.hh"
#include "obs/progress.hh"
#include "obs/sampler.hh"
#include "obs/stats.hh"
#include "obs/timeseries.hh"

using namespace coldboot;
using namespace coldboot::obs;

//
// RingSeries
//

TEST(TelemetryRing, PushAndOrder)
{
    RingSeries ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_TRUE(ring.empty());
    for (int i = 0; i < 3; ++i)
        ring.push({double(i), double(i * 10), 0, 0});
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.at(0).value, 0.0);
    EXPECT_EQ(ring.at(2).value, 20.0);
    EXPECT_EQ(ring.latest().value, 20.0);
}

TEST(TelemetryRing, WrapsOverwritingOldest)
{
    RingSeries ring(3);
    for (int i = 0; i < 7; ++i)
        ring.push({double(i), double(i), 0, 0});
    ASSERT_EQ(ring.size(), 3u);
    // Only the newest 3 of the 7 pushes survive, oldest first.
    EXPECT_EQ(ring.at(0).value, 4.0);
    EXPECT_EQ(ring.at(1).value, 5.0);
    EXPECT_EQ(ring.at(2).value, 6.0);
    auto pts = ring.points();
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_EQ(pts.front().value, 4.0);
    EXPECT_EQ(pts.back().value, 6.0);
}

TEST(TelemetryRing, ClearEmpties)
{
    RingSeries ring(2);
    ring.push({1, 1, 0, 0});
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);
}

//
// TelemetrySampler math (manual ticks on a private registry)
//

TEST(TelemetrySampler, DeltasAndValues)
{
    StatRegistry reg;
    auto &c = reg.counter("t.counter", "test counter");
    TelemetrySampler::Config cfg;
    cfg.publish_worker_stats = false;
    cfg.ring_capacity = 8;
    TelemetrySampler sampler(cfg, &reg);

    c.add(5);
    sampler.sampleOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    c.add(10);
    sampler.sampleOnce();

    EXPECT_EQ(sampler.tickCount(), 2u);
    auto series = sampler.seriesSnapshot();
    ASSERT_EQ(series.size(), 1u);
    EXPECT_EQ(series[0].name, "t.counter");
    EXPECT_EQ(series[0].kind, "counter");
    ASSERT_EQ(series[0].points.size(), 2u);
    EXPECT_EQ(series[0].points[0].value, 5.0);
    EXPECT_EQ(series[0].points[0].delta, 0.0); // first observation
    EXPECT_EQ(series[0].points[1].value, 15.0);
    EXPECT_EQ(series[0].points[1].delta, 10.0);
    EXPECT_GT(series[0].points[1].rate, 0.0);
    EXPECT_GT(series[0].ewma_rate, 0.0);
    EXPECT_GT(series[0].points[1].unix_ms, 0.0);
}

TEST(TelemetrySampler, EwmaSmoothing)
{
    StatRegistry reg;
    auto &c = reg.counter("t.c");
    TelemetrySampler::Config cfg;
    cfg.publish_worker_stats = false;
    cfg.ewma_alpha = 0.5;
    TelemetrySampler sampler(cfg, &reg);

    sampler.sampleOnce();
    for (int i = 0; i < 4; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        c.add(100);
        sampler.sampleOnce();
    }
    auto series = sampler.seriesSnapshot();
    ASSERT_EQ(series.size(), 1u);
    // EWMA with alpha 0.5 after several same-sign rates sits strictly
    // between zero and the latest instantaneous rate's neighborhood.
    EXPECT_GT(series[0].ewma_rate, 0.0);
}

TEST(TelemetrySampler, RingBoundsMemory)
{
    StatRegistry reg;
    auto &c = reg.counter("t.c");
    TelemetrySampler::Config cfg;
    cfg.publish_worker_stats = false;
    cfg.ring_capacity = 4;
    TelemetrySampler sampler(cfg, &reg);
    for (int i = 0; i < 20; ++i) {
        c.add(1);
        sampler.sampleOnce();
    }
    auto series = sampler.seriesSnapshot();
    ASSERT_EQ(series.size(), 1u);
    EXPECT_EQ(series[0].points.size(), 4u);
    EXPECT_EQ(series[0].points.back().value, 20.0);
}

TEST(TelemetrySampler, CoversAllStatKinds)
{
    StatRegistry reg;
    reg.counter("t.counter").add(1);
    reg.setScalar("t.scalar", 2.5);
    reg.rate("t.rate").add(3);
    reg.distribution("t.dist").sample(7.0);
    TelemetrySampler::Config cfg;
    cfg.publish_worker_stats = false;
    TelemetrySampler sampler(cfg, &reg);
    sampler.sampleOnce();
    auto series = sampler.seriesSnapshot();
    ASSERT_EQ(series.size(), 4u);
    std::map<std::string, std::string> kinds;
    for (const auto &s : series)
        kinds[s.name] = s.kind;
    EXPECT_EQ(kinds["t.counter"], "counter");
    EXPECT_EQ(kinds["t.scalar"], "scalar");
    EXPECT_EQ(kinds["t.rate"], "rate");
    EXPECT_EQ(kinds["t.dist"], "distribution_count");
}

TEST(TelemetrySampler, BackgroundLoopTicks)
{
    StatRegistry reg;
    reg.counter("t.c").add(1);
    TelemetrySampler::Config cfg;
    cfg.publish_worker_stats = false;
    cfg.period = std::chrono::milliseconds(5);
    TelemetrySampler sampler(cfg, &reg);
    sampler.start();
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(5);
    while (sampler.tickCount() < 3 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    sampler.stop();
    EXPECT_GE(sampler.tickCount(), 3u);
    uint64_t after = sampler.tickCount();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(sampler.tickCount(), after); // stopped means stopped
}

//
// Prometheus rendering + validation
//

TEST(PrometheusExport, NameMangling)
{
    EXPECT_EQ(prometheusName("attack.miner.blocks_scanned"),
              "attack_miner_blocks_scanned");
    EXPECT_EQ(prometheusName("exec.pool.worker.0.steals"),
              "exec_pool_worker_0_steals");
    EXPECT_EQ(prometheusName("9lives"), "_9lives");
    EXPECT_EQ(prometheusName("a-b c"), "a_b_c");
    EXPECT_EQ(prometheusName(""), "_");
}

namespace
{

StatSnapshot
counterSnap(const std::string &name, double v,
            const std::string &desc = "")
{
    StatSnapshot s;
    s.name = name;
    s.desc = desc;
    s.type = StatSnapshot::Type::Counter;
    s.value = v;
    return s;
}

} // anonymous namespace

TEST(PrometheusExport, RendersCounterGaugeRate)
{
    std::vector<StatSnapshot> stats;
    stats.push_back(counterSnap("a.count", 7, "a counter"));
    StatSnapshot sc;
    sc.name = "b.gauge";
    sc.type = StatSnapshot::Type::Scalar;
    sc.value = 1.5;
    stats.push_back(sc);
    StatSnapshot r;
    r.name = "c.rate";
    r.type = StatSnapshot::Type::Rate;
    r.value = 100;
    r.per_second = 42.5;
    stats.push_back(r);

    std::string text = renderPrometheusText(stats);
    EXPECT_NE(text.find("# HELP a_count a counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE a_count counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("\na_count 7\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE b_gauge gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE c_rate counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("c_rate_per_second 42.5\n"),
              std::string::npos);

    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, &error)) << error;
}

TEST(PrometheusExport, RendersHistogramCumulative)
{
    StatSnapshot s;
    s.name = "d.hist";
    s.type = StatSnapshot::Type::Distribution;
    s.dist.count = 6;
    s.dist.sum = 30.0;
    s.dist.bucket_edges = {1.0, 10.0};
    // underflow(-inf,1): 2, [1,10): 3, [10,inf): 1
    s.dist.bucket_counts = {2, 3, 1};
    std::string text = renderPrometheusText({s});
    EXPECT_NE(text.find("# TYPE d_hist histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("d_hist_bucket{le=\"1\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("d_hist_bucket{le=\"10\"} 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("d_hist_bucket{le=\"+Inf\"} 6\n"),
              std::string::npos);
    EXPECT_NE(text.find("d_hist_sum 30\n"), std::string::npos);
    EXPECT_NE(text.find("d_hist_count 6\n"), std::string::npos);
    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, &error)) << error;
}

TEST(PrometheusExport, RendersEdgelessDistributionAsGauges)
{
    StatSnapshot s;
    s.name = "e.dist";
    s.type = StatSnapshot::Type::Distribution;
    s.dist.count = 2;
    s.dist.sum = 3.0;
    s.dist.min = 1.0;
    s.dist.max = 2.0;
    s.dist.mean = 1.5;
    std::string text = renderPrometheusText({s});
    EXPECT_NE(text.find("e_dist_count 2\n"), std::string::npos);
    EXPECT_NE(text.find("e_dist_mean 1.5\n"), std::string::npos);
    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, &error)) << error;
}

TEST(PrometheusExport, SeriesEmitEwmaGauges)
{
    SeriesSnapshot sr;
    sr.name = "a.count";
    sr.kind = "counter";
    sr.ewma_rate = 12.5;
    std::string text = renderPrometheusText({}, nullptr);
    EXPECT_TRUE(text.empty());
    std::vector<SeriesSnapshot> series{sr};
    text = renderPrometheusText({}, &series);
    EXPECT_NE(text.find("a_count_ewma_per_second 12.5\n"),
              std::string::npos);
    std::string error;
    EXPECT_TRUE(validatePrometheusText(text, &error)) << error;
}

TEST(PrometheusExport, ValidatorRejectsMalformed)
{
    std::string error;
    // Bad metric name.
    EXPECT_FALSE(validatePrometheusText("9bad 1\n", &error));
    EXPECT_NE(error.find("line 1"), std::string::npos);
    // Bad value.
    EXPECT_FALSE(validatePrometheusText("ok_name abc\n", &error));
    // Unknown TYPE.
    EXPECT_FALSE(
        validatePrometheusText("# TYPE x florp\n", &error));
    // Duplicate TYPE.
    EXPECT_FALSE(validatePrometheusText(
        "# TYPE x counter\n# TYPE x counter\n", &error));
    // Unterminated label set.
    EXPECT_FALSE(
        validatePrometheusText("x{le=\"1\" 2\n", &error));
    // Trailing garbage.
    EXPECT_FALSE(
        validatePrometheusText("x 1 2 3\n", &error));
    // Valid corner cases.
    EXPECT_TRUE(validatePrometheusText("", &error));
    EXPECT_TRUE(validatePrometheusText(
        "# a free comment\nx{a=\"b\",c=\"d\\\"e\"} +Inf 123\n",
        &error))
        << error;
}

TEST(PrometheusExport, SeriesJsonParses)
{
    SeriesSnapshot sr;
    sr.name = "t.c";
    sr.kind = "counter";
    sr.ewma_rate = 1.0;
    sr.points.push_back({1000.0, 5.0, 0.0, 0.0});
    sr.points.push_back({2000.0, 8.0, 3.0, 3.0});
    auto doc = json::parse(renderSeriesJson({sr}));
    ASSERT_TRUE(doc.has_value());
    const auto *series = doc->find("series");
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->array.size(), 1u);
    const auto &entry = series->array[0];
    EXPECT_EQ(entry.find("name")->str, "t.c");
    EXPECT_EQ(entry.find("kind")->str, "counter");
    const auto *points = entry.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->array.size(), 2u);
    EXPECT_EQ(points->array[1].find("delta")->number, 3.0);
}

//
// Progress / ETA
//

TEST(Progress, PercentAndEta)
{
    ProgressTracker tracker;
    auto job = tracker.startJob("test.job", 1000);
    EXPECT_EQ(job->percent(), 0.0);
    EXPECT_EQ(job->etaSeconds(), -1.0); // unknown before any work
    job->advance(250);
    EXPECT_DOUBLE_EQ(job->percent(), 25.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    double eta = job->etaSeconds();
    EXPECT_GE(eta, 0.0); // 3x the elapsed time, whatever it was
    job->advance(750);
    EXPECT_DOUBLE_EQ(job->percent(), 100.0);
    EXPECT_EQ(job->etaSeconds(), 0.0);
    job->finish();
    EXPECT_TRUE(job->finished());
    EXPECT_EQ(job->percent(), 100.0);
    EXPECT_EQ(job->etaSeconds(), 0.0);
    double elapsed = job->elapsedSeconds();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(job->elapsedSeconds(), elapsed); // frozen at finish
}

TEST(Progress, FinishSnapsShortJobTo100)
{
    ProgressTracker tracker;
    auto job = tracker.startJob("test.partial", 100);
    job->advance(10);
    job->finish();
    EXPECT_EQ(job->percent(), 100.0);
    EXPECT_EQ(job->doneUnits(), 100u);
}

TEST(Progress, ZeroTotalJob)
{
    ProgressTracker tracker;
    auto job = tracker.startJob("test.empty", 0);
    EXPECT_EQ(job->percent(), 0.0);
    EXPECT_EQ(job->etaSeconds(), -1.0);
    job->finish();
    EXPECT_EQ(job->percent(), 100.0);
}

TEST(Progress, PercentClampsOverAdvance)
{
    ProgressTracker tracker;
    auto job = tracker.startJob("test.over", 10);
    job->advance(100);
    EXPECT_EQ(job->percent(), 100.0);
    EXPECT_EQ(job->etaSeconds(), 0.0);
}

TEST(Progress, TrackerSnapshotAndJson)
{
    ProgressTracker tracker;
    auto a = tracker.startJob("job.a", 10);
    auto b = tracker.startJob("job.b", 20);
    a->advance(5);
    b->finish();
    auto snaps = tracker.snapshot();
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].name, "job.a");
    EXPECT_EQ(snaps[0].done_units, 5u);
    EXPECT_FALSE(snaps[0].finished);
    EXPECT_TRUE(snaps[1].finished);
    EXPECT_EQ(snaps[1].percent, 100.0);
    EXPECT_LT(snaps[0].id, snaps[1].id);

    auto doc = json::parse(tracker.dumpJson());
    ASSERT_TRUE(doc.has_value());
    const auto *jobs = doc->find("jobs");
    ASSERT_NE(jobs, nullptr);
    ASSERT_EQ(jobs->array.size(), 2u);
    EXPECT_EQ(jobs->array[0].find("name")->str, "job.a");
    EXPECT_EQ(jobs->array[0].find("percent")->number, 50.0);
    EXPECT_TRUE(jobs->array[1].find("finished")->boolean);
}

TEST(Progress, BoundedFinishedRetention)
{
    ProgressTracker tracker;
    auto live = tracker.startJob("live", 10);
    for (int i = 0; i < 200; ++i)
        tracker.startJob("fin." + std::to_string(i), 1)->finish();
    auto snaps = tracker.snapshot();
    // Bounded: at most keptFinished finished jobs plus the live one.
    EXPECT_LE(snaps.size(), ProgressTracker::keptFinished + 1);
    bool live_present = false;
    for (const auto &s : snaps)
        live_present = live_present || s.name == "live";
    EXPECT_TRUE(live_present); // live jobs are never evicted
    tracker.resetForTest();
    EXPECT_TRUE(tracker.snapshot().empty());
}

//
// json::escape control characters and UTF-8
//

TEST(JsonEscape, AllControlCharsEscaped)
{
    for (int c = 0; c < 0x20; ++c) {
        std::string in(1, static_cast<char>(c));
        std::string out = json::escape(in);
        EXPECT_EQ(out[0], '\\') << "control 0x" << std::hex << c;
        // Round-trips through the in-tree parser.
        auto doc = json::parse("\"" + out + "\"");
        ASSERT_TRUE(doc.has_value()) << "control 0x" << std::hex << c;
    }
    EXPECT_EQ(json::escape("\b"), "\\b");
    EXPECT_EQ(json::escape("\f"), "\\f");
    EXPECT_EQ(json::escape("\n"), "\\n");
    EXPECT_EQ(json::escape("\r"), "\\r");
    EXPECT_EQ(json::escape("\t"), "\\t");
    EXPECT_EQ(json::escape(std::string(1, '\0')), "\\u0000");
    EXPECT_EQ(json::escape("\x1f"), "\\u001f");
    EXPECT_EQ(json::escape("\"\\"), "\\\"\\\\");
}

TEST(JsonEscape, ValidUtf8PassesThrough)
{
    EXPECT_EQ(json::escape("caf\xc3\xa9"), "caf\xc3\xa9");
    EXPECT_EQ(json::escape("\xe2\x82\xac"), "\xe2\x82\xac"); // euro
    EXPECT_EQ(json::escape("\xf0\x9f\x94\x91"),
              "\xf0\x9f\x94\x91"); // key emoji (4-byte)
}

TEST(JsonEscape, InvalidUtf8Replaced)
{
    const std::string fffd = "\xef\xbf\xbd";
    // Stray continuation byte.
    EXPECT_EQ(json::escape("\x80"), fffd);
    // Truncated 2-byte sequence.
    EXPECT_EQ(json::escape("\xc3"), fffd);
    // Overlong encoding of '/' (0xc0 0xaf).
    EXPECT_EQ(json::escape("\xc0\xaf"), fffd + fffd);
    // Encoded UTF-16 surrogate (U+D800 = ed a0 80).
    EXPECT_EQ(json::escape("\xed\xa0\x80"), fffd + fffd + fffd);
    // Above U+10FFFF (f4 90 80 80).
    EXPECT_EQ(json::escape("\xf4\x90\x80\x80"),
              fffd + fffd + fffd + fffd);
    // Valid text around the damage survives.
    EXPECT_EQ(json::escape("a\x80z"), "a" + fffd + "z");
}

//
// HTTP server over real sockets
//

namespace
{

struct HttpResponse
{
    int status = 0;
    std::string body;
    std::string raw;
};

/** Minimal raw-socket HTTP/1.0-style client for localhost tests. */
HttpResponse
httpRequest(uint16_t port, const std::string &path,
            const std::string &method = "GET")
{
    HttpResponse out;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return out;
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                  sizeof(sa)) != 0) {
        ::close(fd);
        return out;
    }
    std::string req = method + " " + path +
                      " HTTP/1.1\r\nHost: localhost\r\n"
                      "Connection: close\r\n\r\n";
    size_t off = 0;
    while (off < req.size()) {
        ssize_t n =
            ::send(fd, req.data() + off, req.size() - off, 0);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        out.raw.append(buf, static_cast<size_t>(n));
    ::close(fd);
    if (out.raw.size() > 12 && out.raw.rfind("HTTP/1.1 ", 0) == 0)
        out.status = std::atoi(out.raw.c_str() + 9);
    size_t hdr_end = out.raw.find("\r\n\r\n");
    if (hdr_end != std::string::npos)
        out.body = out.raw.substr(hdr_end + 4);
    return out;
}

} // anonymous namespace

TEST(ObsHttp, ParseServeSpec)
{
    ServeSpec spec;
    std::string error;
    EXPECT_TRUE(parseServeSpec("8080", &spec, &error));
    EXPECT_EQ(spec.addr, "127.0.0.1");
    EXPECT_EQ(spec.port, 8080);
    EXPECT_TRUE(parseServeSpec("0.0.0.0:0", &spec, &error));
    EXPECT_EQ(spec.addr, "0.0.0.0");
    EXPECT_EQ(spec.port, 0);
    EXPECT_FALSE(parseServeSpec("", &spec, &error));
    EXPECT_FALSE(parseServeSpec("abc", &spec, &error));
    EXPECT_FALSE(parseServeSpec("127.0.0.1:", &spec, &error));
    EXPECT_FALSE(parseServeSpec("127.0.0.1:99999", &spec, &error));
    EXPECT_FALSE(parseServeSpec("nothost:80", &spec, &error));
    EXPECT_FALSE(parseServeSpec(":80", &spec, &error));
}

namespace
{

/** Server bound to an ephemeral localhost port, for one test. */
struct ServerFixture
{
    std::unique_ptr<TelemetrySampler> sampler;
    std::unique_ptr<ObsHttpServer> server;

    explicit ServerFixture(bool with_sampler = true)
    {
        if (with_sampler) {
            TelemetrySampler::Config cfg;
            cfg.publish_worker_stats = false;
            sampler = std::make_unique<TelemetrySampler>(cfg);
        }
        ObsHttpServer::Options opts;
        opts.sampler = sampler.get();
        server = std::make_unique<ObsHttpServer>(opts);
        std::string error;
        bool ok = server->start(&error);
        EXPECT_TRUE(ok) << error;
    }
};

} // anonymous namespace

TEST(ObsHttp, HealthzAndRouting)
{
    ServerFixture fx;
    EXPECT_GT(fx.server->port(), 0);
    EXPECT_EQ(fx.server->address(), "127.0.0.1");

    auto health = httpRequest(fx.server->port(), "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "ok\n");
    EXPECT_NE(health.raw.find("Content-Length: 3"),
              std::string::npos);
    EXPECT_NE(health.raw.find("Connection: close"),
              std::string::npos);

    EXPECT_EQ(httpRequest(fx.server->port(), "/nope").status, 404);
    EXPECT_EQ(httpRequest(fx.server->port(), "/healthz", "POST")
                  .status,
              405);
    // Query strings are ignored for routing.
    EXPECT_EQ(httpRequest(fx.server->port(), "/healthz?x=1").status,
              200);
    EXPECT_GE(fx.server->requestsServed(), 4u);
}

TEST(ObsHttp, MetricsEndpointIsValidPrometheus)
{
    StatRegistry::global().counter("telemetry.test.hits").add(3);
    ServerFixture fx;
    fx.sampler->sampleOnce();
    auto resp = httpRequest(fx.server->port(), "/metrics");
    ASSERT_EQ(resp.status, 200);
    EXPECT_NE(resp.raw.find("text/plain; version=0.0.4"),
              std::string::npos);
    std::string error;
    EXPECT_TRUE(validatePrometheusText(resp.body, &error)) << error;
    EXPECT_NE(resp.body.find("telemetry_test_hits"),
              std::string::npos);
    EXPECT_NE(resp.body.find("_ewma_per_second"),
              std::string::npos);
}

TEST(ObsHttp, JsonEndpointsParse)
{
    StatRegistry::global().counter("telemetry.test.json").add(1);
    auto job =
        ProgressTracker::global().startJob("telemetry.test.job", 4);
    job->advance(1);
    ServerFixture fx;
    fx.sampler->sampleOnce();

    auto stats = httpRequest(fx.server->port(), "/stats");
    ASSERT_EQ(stats.status, 200);
    auto stats_doc = json::parse(stats.body);
    ASSERT_TRUE(stats_doc.has_value());
    const auto *tree = stats_doc->find("stats");
    ASSERT_NE(tree, nullptr);
    EXPECT_NE(tree->find("telemetry.test.json"), nullptr);

    auto series = httpRequest(fx.server->port(), "/stats/series");
    ASSERT_EQ(series.status, 200);
    auto series_doc = json::parse(series.body);
    ASSERT_TRUE(series_doc.has_value());
    EXPECT_NE(series_doc->find("series"), nullptr);

    auto progress = httpRequest(fx.server->port(), "/progress");
    ASSERT_EQ(progress.status, 200);
    auto prog_doc = json::parse(progress.body);
    ASSERT_TRUE(prog_doc.has_value());
    const auto *jobs = prog_doc->find("jobs");
    ASSERT_NE(jobs, nullptr);
    bool found = false;
    for (const auto &j : jobs->array)
        found = found || j.find("name")->str == "telemetry.test.job";
    EXPECT_TRUE(found);
    job->finish();

    auto trace = httpRequest(fx.server->port(), "/trace");
    ASSERT_EQ(trace.status, 200);
    EXPECT_TRUE(json::parse(trace.body).has_value());
}

TEST(ObsHttp, QuitFlagAndStop)
{
    ServerFixture fx(false);
    EXPECT_FALSE(fx.server->quitRequested());
    auto resp = httpRequest(fx.server->port(), "/quit");
    EXPECT_EQ(resp.status, 200);
    EXPECT_TRUE(fx.server->quitRequested());
    uint16_t port = fx.server->port();
    fx.server->stop();
    // After stop the port no longer accepts.
    auto dead = httpRequest(port, "/healthz");
    EXPECT_EQ(dead.status, 0);
    // stop() is idempotent.
    fx.server->stop();
}

TEST(ObsHttp, MalformedRequestsAnswered)
{
    ServerFixture fx(false);
    // Raw garbage instead of an HTTP request line.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(fx.server->port());
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                        sizeof(sa)),
              0);
    const char *junk = "\r\n\r\n";
    ASSERT_GT(::send(fd, junk, 4, 0), 0);
    std::string got;
    char buf[512];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        got.append(buf, static_cast<size_t>(n));
    ::close(fd);
    EXPECT_NE(got.find("400"), std::string::npos);
    // The server survives to answer the next request.
    EXPECT_EQ(httpRequest(fx.server->port(), "/healthz").status,
              200);
}

//
// Concurrent scrapes under live counter traffic (TSan suite)
//

TEST(TelemetryConcurrency, ScrapesRaceCountersAndSampler)
{
    auto &c = StatRegistry::global().counter(
        "telemetry.race.counter");
    TelemetrySampler::Config cfg;
    cfg.period = std::chrono::milliseconds(1);
    TelemetrySampler sampler(cfg);
    sampler.start();
    ObsHttpServer::Options opts;
    opts.sampler = &sampler;
    ObsHttpServer server(opts);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    uint16_t port = server.port();

    // Scrapers on a pool, mutators on the caller: every combination
    // of {counter add, sampler tick, HTTP render} overlaps.
    exec::ThreadPool pool(4);
    exec::ThreadPool::TaskGroup group(pool);
    std::atomic<int> bad{0};
    const char *paths[] = {"/metrics", "/stats", "/stats/series",
                           "/progress"};
    for (int t = 0; t < 4; ++t) {
        group.run([&, t] {
            for (int i = 0; i < 8; ++i) {
                auto resp = httpRequest(port, paths[t]);
                if (resp.status != 200)
                    bad.fetch_add(1);
            }
        });
    }
    auto job = ProgressTracker::global().startJob(
        "telemetry.race.job", 1u << 16);
    for (int i = 0; i < (1 << 16); ++i) {
        c.add(1);
        job->advance(1);
    }
    group.wait();
    job->finish();
    EXPECT_EQ(bad.load(), 0);
    server.stop();
    sampler.stop();
    EXPECT_GE(sampler.tickCount(), 1u);
}
