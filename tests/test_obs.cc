/**
 * @file
 * Unit tests for the observability layer: counter and histogram
 * math, concurrent increments, the JSON export round-trip (through
 * the in-tree parser) and the Chrome trace exporter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

using namespace coldboot;
using namespace coldboot::obs;

TEST(Counter, AddAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, EmptySnapshot)
{
    Distribution d;
    auto s = d.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.sum, 0.0);
    EXPECT_EQ(s.mean, 0.0);
    EXPECT_EQ(s.stddev, 0.0);
}

TEST(Distribution, SingleSampleHasZeroStddev)
{
    Distribution d;
    d.sample(7.5);
    auto s = d.snapshot();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.min, 7.5);
    EXPECT_DOUBLE_EQ(s.max, 7.5);
    EXPECT_DOUBLE_EQ(s.mean, 7.5);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Distribution, MeanAndPopulationStddev)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    auto s = d.snapshot();
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    // Canonical population-stddev example: sigma = 2.
    EXPECT_NEAR(s.stddev, 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Distribution, BucketEdgesAreHalfOpen)
{
    // Buckets: (-inf,0) [0,10) [10,20) [20,+inf)
    Distribution d({0.0, 10.0, 20.0});
    d.sample(-1.0);  // underflow
    d.sample(0.0);   // [0,10) - on-edge goes to the upper bucket
    d.sample(9.999); // [0,10)
    d.sample(10.0);  // [10,20)
    d.sample(20.0);  // overflow [20,+inf)
    d.sample(25.0);  // overflow
    auto s = d.snapshot();
    ASSERT_EQ(s.bucket_edges.size(), 3u);
    ASSERT_EQ(s.bucket_counts.size(), 4u);
    EXPECT_EQ(s.bucket_counts[0], 1u);
    EXPECT_EQ(s.bucket_counts[1], 2u);
    EXPECT_EQ(s.bucket_counts[2], 1u);
    EXPECT_EQ(s.bucket_counts[3], 2u);
}

TEST(Distribution, ResetClearsEverything)
{
    Distribution d({1.0});
    d.sample(0.5);
    d.sample(1.5);
    d.reset();
    auto s = d.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.bucket_counts[0], 0u);
    EXPECT_EQ(s.bucket_counts[1], 0u);
}

TEST(Rate, CountsEvents)
{
    Rate r;
    r.add(10);
    r.add(5);
    EXPECT_EQ(r.value(), 15u);
    EXPECT_GE(r.seconds(), 0.0);
    EXPECT_GE(r.perSecond(), 0.0);
}

TEST(Registry, SameNameReturnsSameInstance)
{
    StatRegistry reg;
    Counter &a = reg.counter("layer.comp.metric", "desc");
    Counter &b = reg.counter("layer.comp.metric");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(reg.counterValue("layer.comp.metric"), 3u);
    EXPECT_TRUE(reg.has("layer.comp.metric"));
    EXPECT_FALSE(reg.has("layer.comp.other"));
}

TEST(Registry, ConcurrentIncrementsAreExact)
{
    StatRegistry reg;
    Counter &c = reg.counter("test.concurrent.counter");
    Distribution &d = reg.distribution("test.concurrent.dist");
    constexpr int threads = 8;
    constexpr int per_thread = 10000;
    // coldboot-lint: allow(no-raw-thread) -- stressing the registry below the ThreadPool layer
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&c, &d] {
            for (int i = 0; i < per_thread; ++i) {
                c.add();
                d.sample(1.0);
            }
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(c.value(),
              static_cast<uint64_t>(threads) * per_thread);
    auto s = d.snapshot();
    EXPECT_EQ(s.count, static_cast<uint64_t>(threads) * per_thread);
    EXPECT_DOUBLE_EQ(s.mean, 1.0);
}

TEST(Registry, ResetForTestZeroesButKeepsReferences)
{
    StatRegistry reg;
    Counter &c = reg.counter("a.b.c");
    c.add(9);
    reg.resetForTest();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(&c, &reg.counter("a.b.c"));
    EXPECT_TRUE(reg.has("a.b.c"));
}

TEST(Registry, ScalarStoresFiniteValues)
{
    StatRegistry reg;
    reg.setScalar("bench.x.value", 3.25, "a figure");
    EXPECT_DOUBLE_EQ(reg.scalarValue("bench.x.value"), 3.25);
    // Non-finite values must never reach the JSON dump.
    reg.setScalar("bench.x.bad", std::nan(""));
    EXPECT_DOUBLE_EQ(reg.scalarValue("bench.x.bad"), 0.0);
    reg.setScalar("bench.x.inf", INFINITY);
    EXPECT_DOUBLE_EQ(reg.scalarValue("bench.x.inf"), 0.0);
}

TEST(Registry, JsonRoundTrip)
{
    StatRegistry reg;
    reg.counter("attack.test.blocks", "blocks").add(123);
    Distribution &d =
        reg.distribution("engine.test.lat_ns", "ns", {0.0, 12.5});
    d.sample(5.0);
    d.sample(20.0);
    reg.rate("attack.test.runs").add(2);
    reg.setScalar("bench.test.figure", 1.5);

    auto doc = json::parse(reg.dumpJson());
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());

    const auto *meta = doc->find("meta");
    ASSERT_NE(meta, nullptr);
    const auto *wall = meta->find("wall_seconds");
    ASSERT_NE(wall, nullptr);
    EXPECT_GE(wall->number, 0.0);

    const auto *stats = doc->find("stats");
    ASSERT_NE(stats, nullptr);

    const auto *c = stats->find("attack.test.blocks");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->find("type")->str, "counter");
    EXPECT_DOUBLE_EQ(c->find("value")->number, 123.0);
    EXPECT_EQ(c->find("desc")->str, "blocks");

    const auto *dd = stats->find("engine.test.lat_ns");
    ASSERT_NE(dd, nullptr);
    EXPECT_EQ(dd->find("type")->str, "distribution");
    EXPECT_DOUBLE_EQ(dd->find("count")->number, 2.0);
    EXPECT_DOUBLE_EQ(dd->find("mean")->number, 12.5);
    ASSERT_NE(dd->find("bucket_counts"), nullptr);
    ASSERT_EQ(dd->find("bucket_counts")->array.size(), 3u);
    EXPECT_DOUBLE_EQ(dd->find("bucket_counts")->array[1].number,
                     1.0);
    EXPECT_DOUBLE_EQ(dd->find("bucket_counts")->array[2].number,
                     1.0);

    const auto *r = stats->find("attack.test.runs");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->find("type")->str, "rate");
    EXPECT_DOUBLE_EQ(r->find("value")->number, 2.0);
    ASSERT_NE(r->find("per_second"), nullptr);

    const auto *s = stats->find("bench.test.figure");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->find("type")->str, "scalar");
    EXPECT_DOUBLE_EQ(s->find("value")->number, 1.5);
}

TEST(Registry, TextDumpContainsEveryStat)
{
    StatRegistry reg;
    reg.counter("z.last.metric").add(1);
    reg.counter("a.first.metric").add(2);
    std::string text = reg.dumpText();
    EXPECT_NE(text.find("a.first.metric"), std::string::npos);
    EXPECT_NE(text.find("z.last.metric"), std::string::npos);
    // Name-sorted dump: a.* precedes z.*.
    EXPECT_LT(text.find("a.first.metric"), text.find("z.last.metric"));
}

TEST(Tracer, ScopedSpanRecordsCompleteEvent)
{
    PhaseTracer tracer;
    {
        ScopedSpan span("phase.test", tracer);
    }
    ASSERT_EQ(tracer.eventCount(), 1u);
    auto events = tracer.events();
    EXPECT_EQ(events[0].name, "phase.test");
    EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(Tracer, StopIsIdempotentAndReturnsSeconds)
{
    PhaseTracer tracer;
    ScopedSpan span("phase.stop", tracer);
    double secs = span.stop();
    EXPECT_GE(secs, 0.0);
    EXPECT_DOUBLE_EQ(span.stop(), secs);
    ASSERT_EQ(tracer.eventCount(), 1u);
}

TEST(Tracer, DisabledTracerDropsSpans)
{
    PhaseTracer tracer;
    tracer.setEnabled(false);
    {
        ScopedSpan span("phase.dropped", tracer);
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(Tracer, ChromeTraceJsonHasRequiredFields)
{
    PhaseTracer tracer;
    {
        ScopedSpan a("mine", tracer);
        ScopedSpan b("search", tracer);
    }
    auto doc = json::parse(tracer.chromeTraceJson());
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isArray());
    ASSERT_EQ(doc->array.size(), 2u);
    for (const auto &ev : doc->array) {
        ASSERT_TRUE(ev.isObject());
        ASSERT_NE(ev.find("name"), nullptr);
        ASSERT_NE(ev.find("ph"), nullptr);
        EXPECT_EQ(ev.find("ph")->str, "X");
        ASSERT_NE(ev.find("ts"), nullptr);
        ASSERT_NE(ev.find("dur"), nullptr);
        ASSERT_NE(ev.find("pid"), nullptr);
        ASSERT_NE(ev.find("tid"), nullptr);
        EXPECT_GE(ev.find("ts")->number, 0.0);
        EXPECT_GE(ev.find("dur")->number, 0.0);
    }
}

TEST(Tracer, ResetForTestDropsEvents)
{
    PhaseTracer tracer;
    tracer.recordSpan("x", 0.0, 1.0);
    tracer.resetForTest();
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(Tracer, ScopedTimerSamplesDistribution)
{
    Distribution d;
    {
        ScopedTimer t(d);
    }
    auto s = d.snapshot();
    ASSERT_EQ(s.count, 1u);
    EXPECT_GE(s.min, 0.0);
}

TEST(Tracer, NestedSpansLinkToEnclosingParent)
{
    PhaseTracer tracer;
    uint64_t outer_id = 0;
    uint64_t inner_id = 0;
    {
        ScopedSpan outer("outer", tracer);
        outer_id = outer.id();
        EXPECT_EQ(outer.parentId(), 0u);
        EXPECT_EQ(tracer.currentSpanId(), outer_id);
        {
            ScopedSpan inner("inner", tracer);
            inner_id = inner.id();
            EXPECT_EQ(inner.parentId(), outer_id);
            EXPECT_EQ(tracer.currentSpanId(), inner_id);
        }
        // Context restored: the outer span is current again.
        EXPECT_EQ(tracer.currentSpanId(), outer_id);
    }
    EXPECT_EQ(tracer.currentSpanId(), 0u);

    auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    for (const auto &ev : events) {
        if (ev.name == "inner") {
            EXPECT_EQ(ev.id, inner_id);
            EXPECT_EQ(ev.parent, outer_id);
        } else {
            EXPECT_EQ(ev.name, "outer");
            EXPECT_EQ(ev.id, outer_id);
            EXPECT_EQ(ev.parent, 0u);
        }
    }
}

TEST(Tracer, PoolTaskSpanUsesProvidedParentAndRestoresContext)
{
    PhaseTracer tracer;
    ScopedSpan worker("worker.context", tracer);
    {
        // The pool-task form: parent comes from the submitter's
        // captured context, not from this thread's current span.
        ScopedSpan task("exec.task", 0xabcd, 0, tracer);
        EXPECT_EQ(task.parentId(), 0xabcdu);
        EXPECT_EQ(tracer.currentSpanId(), task.id());
    }
    EXPECT_EQ(tracer.currentSpanId(), worker.id());
}

TEST(Tracer, OverflowIsCountedNeverSilent)
{
    Counter &dropped_stat =
        StatRegistry::global().counter("obs.trace.dropped");
    uint64_t stat_before = dropped_stat.value();

    PhaseTracer tracer(4);
    for (int i = 0; i < 10; ++i)
        tracer.recordSpan("overflow", i * 1.0, 1.0);

    EXPECT_EQ(tracer.eventCount(), 4u);
    EXPECT_EQ(tracer.droppedCount(), 6u);
    EXPECT_EQ(dropped_stat.value() - stat_before, 6u);

    // resetForTest clears the buffered events and the drop count.
    tracer.resetForTest();
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.droppedCount(), 0u);
}

TEST(Tracer, ChromeTraceJsonCarriesSpanIdsInArgs)
{
    PhaseTracer tracer;
    {
        ScopedSpan outer("outer", tracer);
        ScopedSpan inner("inner", tracer);
    }
    auto doc = json::parse(tracer.chromeTraceJson());
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->array.size(), 2u);

    std::string outer_span;
    for (const auto &ev : doc->array) {
        const auto *args = ev.find("args");
        ASSERT_NE(args, nullptr);
        ASSERT_NE(args->find("span"), nullptr);
        ASSERT_NE(args->find("parent"), nullptr);
        // Ids render as hex strings (Chrome id convention).
        EXPECT_EQ(args->find("span")->str.rfind("0x", 0), 0u);
        if (ev.find("name")->str == "outer")
            outer_span = args->find("span")->str;
    }
    for (const auto &ev : doc->array) {
        if (ev.find("name")->str == "inner") {
            EXPECT_EQ(ev.find("args")->find("parent")->str,
                      outer_span);
        }
    }
}

TEST(Tracer, FlowEventsRenderAsChromeFlowPair)
{
    PhaseTracer tracer;
    uint64_t flow = tracer.newId();
    tracer.recordFlowStart("exec.task", flow);
    {
        ScopedSpan task("exec.task", 0, flow, tracer);
    }
    auto doc = json::parse(tracer.chromeTraceJson());
    ASSERT_TRUE(doc.has_value());

    const json::Value *start = nullptr;
    const json::Value *finish = nullptr;
    const json::Value *slice = nullptr;
    for (const auto &ev : doc->array) {
        const std::string &ph = ev.find("ph")->str;
        if (ph == "s")
            start = &ev;
        else if (ph == "f")
            finish = &ev;
        else if (ph == "X")
            slice = &ev;
    }
    ASSERT_NE(start, nullptr);
    ASSERT_NE(finish, nullptr);
    ASSERT_NE(slice, nullptr);

    // The s/f pair binds by category + id...
    EXPECT_EQ(start->find("cat")->str, "flow");
    EXPECT_EQ(finish->find("cat")->str, "flow");
    EXPECT_EQ(start->find("id")->str, finish->find("id")->str);
    EXPECT_EQ(finish->find("bp")->str, "e");
    // ...and the finish lands inside the task slice (same thread,
    // timestamp within the slice), so viewers attach the arrow there.
    EXPECT_EQ(finish->find("tid")->number,
              slice->find("tid")->number);
    EXPECT_GE(finish->find("ts")->number, slice->find("ts")->number);
    EXPECT_LE(finish->find("ts")->number,
              slice->find("ts")->number +
                  slice->find("dur")->number);
    EXPECT_EQ(slice->find("args")->find("flow")->str,
              start->find("id")->str);
    EXPECT_LE(start->find("ts")->number, finish->find("ts")->number);
}

TEST(Json, ParsesScalarsAndNesting)
{
    auto doc = json::parse(
        R"({"a": [1, -2.5, 1e3], "b": {"c": "x\n"}, "d": true,)"
        R"( "e": null})");
    ASSERT_TRUE(doc.has_value());
    const auto *a = doc->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
    EXPECT_DOUBLE_EQ(a->array[1].number, -2.5);
    EXPECT_DOUBLE_EQ(a->array[2].number, 1000.0);
    EXPECT_EQ(doc->find("b")->find("c")->str, "x\n");
    EXPECT_TRUE(doc->find("d")->boolean);
    EXPECT_TRUE(doc->find("e")->isNull());
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(json::parse("{").has_value());
    EXPECT_FALSE(json::parse("[1,]").has_value());
    EXPECT_FALSE(json::parse("{\"a\": }").has_value());
    EXPECT_FALSE(json::parse("tru").has_value());
    EXPECT_FALSE(json::parse("{} trailing").has_value());
}
