/**
 * @file
 * Analysis-service tests: the wire protocol (codec round-trips,
 * truncation safety, framed socket I/O), the admission-controlled
 * JobScheduler (fair share, RSS budget, cancellation, drain,
 * byte-identity against the one-shot pipeline), the JobServer over
 * loopback (ephemeral ports, EADDRINUSE, malformed peers, stop under
 * load) and the session state machines the jobs are built from.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "attack/attack_pipeline.hh"
#include "attack/key_miner.hh"
#include "attack/sessions.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "exec/cancel.hh"
#include "exec/dump_io.hh"
#include "exec/thread_pool.hh"
#include "memctrl/scrambler.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/scheduler.hh"
#include "serve/server.hh"

namespace coldboot::serve
{
namespace
{

/** A temp file holding @p bytes, removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::vector<uint8_t> &bytes = {})
    {
        path = (std::filesystem::temp_directory_path() /
                "test_serve.XXXXXX")
                   .string();
        int fd = mkstemp(path.data());
        if (fd >= 0) {
            if (!bytes.empty()) {
                ssize_t n = write(fd, bytes.data(), bytes.size());
                (void)n;
            }
            close(fd);
        }
    }

    ~TempFile() { std::remove(path.c_str()); }

    std::string path;
};

/**
 * Dump with @p planted scrambler keys (x @p copies) and one planted
 * XTS keytable (two AES-256 schedules back to back, scrambled with
 * key 1) - the serve-level cousin of test_exec's buildAttackDump.
 */
std::vector<uint8_t>
attackDumpBytes(size_t len, unsigned planted = 4, unsigned copies = 6)
{
    std::vector<uint8_t> bytes(len);
    Xoshiro256StarStar rng(0x5EED);
    rng.fillBytes(bytes);
    size_t lines = len / 64;

    memctrl::Ddr4Scrambler scr(0xBEEF, 0);
    std::vector<std::array<uint8_t, 64>> keys(planted);
    for (unsigned k = 0; k < planted; ++k) {
        scr.poolKey(k * 61 % 4096, keys[k].data());
        for (unsigned copy = 0; copy < copies; ++copy) {
            size_t line = (k * copies + copy + 11) * 397 % lines;
            std::memcpy(&bytes[line * 64], keys[k].data(), 64);
        }
    }

    std::vector<uint8_t> master(64);
    Xoshiro256StarStar key_rng(0x1234);
    key_rng.fillBytes(master);
    auto data_sched = crypto::aesExpandKey({master.data(), 32});
    auto tweak_sched = crypto::aesExpandKey({master.data() + 32, 32});
    uint64_t table_off = (lines / 3) * 64;
    auto plant = [&](const std::vector<uint8_t> &sched,
                     uint64_t off) {
        for (size_t i = 0; i < sched.size(); ++i)
            bytes[off + i] = sched[i] ^ keys[1][(off + i) & 63];
    };
    plant(data_sched, table_off);
    plant(tweak_sched, table_off + data_sched.size());
    return bytes;
}

/** Submit an attack job for @p dump_path; 0 is a test failure. */
uint64_t
submitAttack(JobScheduler &sched, const std::string &dump_path,
             const std::string &client_id = "")
{
    JobSpec spec;
    spec.kind = JobKind::Attack;
    spec.dump_path = dump_path;
    spec.client_id = client_id;
    std::string error;
    uint64_t id = sched.submit(spec, &error);
    EXPECT_NE(id, 0u) << error;
    return id;
}

//
// Wire protocol
//

TEST(ServeProtocol, WirePrimitivesRoundTrip)
{
    WireWriter w;
    w.u32(0);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.str("");
    w.str("hello, dump");

    WireReader r(w.bytes());
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.str(), "hello, dump");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(ServeProtocol, TruncatedReadsTurnNotOkWithoutThrowing)
{
    WireWriter w;
    w.u32(7);
    WireReader r(w.bytes());
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_TRUE(r.atEnd());
    // Reading past the end: zero values, ok() latches false.
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.atEnd());

    // A string whose length prefix overruns the payload.
    WireWriter w2;
    w2.u32(1000); // claims 1000 bytes; none follow
    WireReader r2(w2.bytes());
    EXPECT_EQ(r2.str(), "");
    EXPECT_FALSE(r2.ok());
}

TEST(ServeProtocol, JobSpecRoundTrips)
{
    JobSpec spec;
    spec.kind = JobKind::Descramble;
    spec.dump_path = "/dumps/capture.img";
    spec.out_path = "/dumps/plain.img";
    spec.client_id = "forensics-7";
    spec.scan_limit_bytes = 32ull << 20;
    spec.key_sizes = {crypto::AesKeySize::Aes128,
                      crypto::AesKeySize::Aes256};
    spec.top_n = 25;

    WireWriter w;
    encodeJobSpec(w, spec);
    WireReader r(w.bytes());
    JobSpec out;
    ASSERT_TRUE(decodeJobSpec(r, &out));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(out.kind, spec.kind);
    EXPECT_EQ(out.dump_path, spec.dump_path);
    EXPECT_EQ(out.out_path, spec.out_path);
    EXPECT_EQ(out.client_id, spec.client_id);
    EXPECT_EQ(out.scan_limit_bytes, spec.scan_limit_bytes);
    EXPECT_EQ(out.key_sizes, spec.key_sizes);
    EXPECT_EQ(out.top_n, spec.top_n);
}

TEST(ServeProtocol, JobSpecDecodeRejectsHostileValues)
{
    // Out-of-range kind.
    {
        WireWriter w;
        w.u32(99);
        WireReader r(w.bytes());
        JobSpec out;
        EXPECT_FALSE(decodeJobSpec(r, &out));
    }
    // Invalid AES key size (17 is not 16/24/32).
    {
        WireWriter w;
        w.u32(0); // kind
        w.str("d");
        w.str("");
        w.str("");
        w.u64(0);
        w.u32(1);  // one key size...
        w.u32(17); // ...but a bogus one
        w.u64(0);
        WireReader r(w.bytes());
        JobSpec out;
        EXPECT_FALSE(decodeJobSpec(r, &out));
    }
    // Absurd key-size count (allocation guard).
    {
        WireWriter w;
        w.u32(0);
        w.str("d");
        w.str("");
        w.str("");
        w.u64(0);
        w.u32(100000);
        WireReader r(w.bytes());
        JobSpec out;
        EXPECT_FALSE(decodeJobSpec(r, &out));
    }
    // Truncated mid-record.
    {
        WireWriter w;
        w.u32(0);
        w.str("dump.img"); // record stops here
        WireReader r(w.bytes());
        JobSpec out;
        EXPECT_FALSE(decodeJobSpec(r, &out));
    }
}

TEST(ServeProtocol, JobStatusAndResultRoundTrip)
{
    JobStatus st;
    st.job_id = 42;
    st.kind = JobKind::Mine;
    st.state = JobState::Running;
    st.stage = "mine";
    st.client_id = "c1";
    st.done_units = 123;
    st.total_units = 456;
    st.elapsed_ms = 789;
    st.error = "";
    WireWriter w;
    encodeJobStatus(w, st);
    WireReader r(w.bytes());
    JobStatus st_out;
    ASSERT_TRUE(decodeJobStatus(r, &st_out));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(st_out.job_id, st.job_id);
    EXPECT_EQ(st_out.kind, st.kind);
    EXPECT_EQ(st_out.state, st.state);
    EXPECT_EQ(st_out.stage, st.stage);
    EXPECT_EQ(st_out.client_id, st.client_id);
    EXPECT_EQ(st_out.done_units, st.done_units);
    EXPECT_EQ(st_out.total_units, st.total_units);
    EXPECT_EQ(st_out.elapsed_ms, st.elapsed_ms);

    JobResult res;
    res.job_id = 42;
    res.state = JobState::Failed;
    res.text = "partial output\n";
    res.error = "dump vanished";
    WireWriter w2;
    encodeJobResult(w2, res);
    WireReader r2(w2.bytes());
    JobResult res_out;
    ASSERT_TRUE(decodeJobResult(r2, &res_out));
    EXPECT_EQ(res_out.job_id, res.job_id);
    EXPECT_EQ(res_out.state, res.state);
    EXPECT_EQ(res_out.text, res.text);
    EXPECT_EQ(res_out.error, res.error);
}

TEST(ServeProtocol, FramesRoundTripOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    WireWriter w;
    w.str("payload bytes");
    ASSERT_TRUE(writeFrame(fds[0], MsgType::Submit, w.bytes()));
    ASSERT_TRUE(writeFrame(fds[0], MsgType::List, ""));

    Frame f;
    ASSERT_TRUE(readFrame(fds[1], &f));
    EXPECT_EQ(f.type, MsgType::Submit);
    EXPECT_EQ(f.payload, w.bytes());
    ASSERT_TRUE(readFrame(fds[1], &f));
    EXPECT_EQ(f.type, MsgType::List);
    EXPECT_TRUE(f.payload.empty());

    // Peer close reads as EOF.
    close(fds[0]);
    EXPECT_FALSE(readFrame(fds[1], &f));
    close(fds[1]);
}

TEST(ServeProtocol, FrameReadRejectsCorruption)
{
    // Bad magic.
    {
        int fds[2];
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        uint8_t garbage[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
        ASSERT_EQ(send(fds[0], garbage, sizeof(garbage), 0), 12);
        Frame f;
        EXPECT_FALSE(readFrame(fds[1], &f));
        close(fds[0]);
        close(fds[1]);
    }
    // Oversized payload length.
    {
        int fds[2];
        ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        uint8_t header[12];
        uint32_t vals[3] = {kFrameMagic,
                            static_cast<uint32_t>(MsgType::Submit),
                            kMaxPayloadBytes + 1};
        std::memcpy(header, vals, sizeof(header)); // LE host assumed
        ASSERT_EQ(send(fds[0], header, sizeof(header), 0), 12);
        Frame f;
        EXPECT_FALSE(readFrame(fds[1], &f));
        close(fds[0]);
        close(fds[1]);
    }
    // writeFrame refuses to emit an oversized payload at all.
    EXPECT_FALSE(writeFrame(-1, MsgType::Submit,
                            std::string(kMaxPayloadBytes + 1, 'x')));
}

//
// Scheduler
//

TEST(ServeScheduler, SubmitValidatesSpecUpFront)
{
    JobScheduler sched;
    std::string error;

    JobSpec spec;
    spec.kind = JobKind::Attack;
    spec.dump_path = "";
    EXPECT_EQ(sched.submit(spec, &error), 0u);
    EXPECT_NE(error.find("empty"), std::string::npos);

    spec.dump_path = "/nonexistent/test_serve_missing.img";
    EXPECT_EQ(sched.submit(spec, &error), 0u);
    EXPECT_NE(error.find("cannot stat"), std::string::npos);

    // Misaligned dump: exists but is not a multiple of 64 bytes.
    TempFile torn(std::vector<uint8_t>(100, 0xAB));
    spec.dump_path = torn.path;
    EXPECT_EQ(sched.submit(spec, &error), 0u);
    EXPECT_NE(error.find("multiple of 64"), std::string::npos);

    // Empty dump.
    TempFile empty;
    spec.dump_path = empty.path;
    EXPECT_EQ(sched.submit(spec, &error), 0u);
    EXPECT_NE(error.find("multiple of 64"), std::string::npos);

    // Descramble without an output path.
    TempFile ok(attackDumpBytes(KiB(64)));
    spec.kind = JobKind::Descramble;
    spec.dump_path = ok.path;
    spec.out_path = "";
    EXPECT_EQ(sched.submit(spec, &error), 0u);
    EXPECT_NE(error.find("output path"), std::string::npos);

    // A rejected submit must leave no job behind.
    EXPECT_TRUE(sched.list().empty());
    EXPECT_EQ(sched.queuedJobs(), 0u);
}

TEST(ServeScheduler, AttackJobMatchesOneShotPipeline)
{
    TempFile dump(attackDumpBytes(MiB(4)));

    auto src = exec::openDumpSource(dump.path);
    std::string expected =
        attack::renderAttackResult(attack::runColdBootAttack(*src));
    // The planted XTS pair is really recovered - this is a
    // key-recovery comparison, not an empty-vs-empty one.
    ASSERT_NE(expected.find("XTS master keys"), std::string::npos);

    JobScheduler sched;
    uint64_t id = submitAttack(sched, dump.path, "tester");
    JobResult res;
    ASSERT_TRUE(sched.waitResult(id, &res));
    EXPECT_EQ(res.state, JobState::Done);
    EXPECT_EQ(res.text, expected);
    EXPECT_TRUE(res.error.empty());

    auto st = sched.status(id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Done);
    EXPECT_EQ(st->kind, JobKind::Attack);
    EXPECT_EQ(st->client_id, "tester");
    EXPECT_EQ(st->stage, "done");
    EXPECT_GT(st->total_units, 0u);
    EXPECT_EQ(st->done_units, st->total_units);
}

TEST(ServeScheduler, ResultsByteIdenticalAcrossPoolWidths)
{
    TempFile dump(attackDumpBytes(MiB(4)));

    std::string reference;
    for (unsigned w : {1u, 4u}) {
        exec::ThreadPool pool(w);
        exec::ThreadPool::ScopedGlobalOverride ov(pool);
        JobScheduler sched;
        uint64_t id = submitAttack(sched, dump.path);
        JobResult res;
        ASSERT_TRUE(sched.waitResult(id, &res));
        ASSERT_EQ(res.state, JobState::Done);
        if (reference.empty())
            reference = res.text;
        else
            EXPECT_EQ(res.text, reference) << "width " << w;
        sched.shutdown(); // at rest before the pool dies
    }
    EXPECT_NE(reference.find("XTS master keys"), std::string::npos);
}

TEST(ServeScheduler, RoundRobinSharesAcrossClients)
{
    TempFile dump(attackDumpBytes(MiB(4)));
    SchedulerOptions opts;
    opts.max_concurrent_jobs = 1;
    JobScheduler sched(opts);

    uint64_t a1 = submitAttack(sched, dump.path, "alice");
    uint64_t a2 = submitAttack(sched, dump.path, "alice");
    uint64_t b1 = submitAttack(sched, dump.path, "bob");
    ASSERT_NE(a1, 0u);

    // Fair share: after alice's first job the round-robin admits
    // bob's lone job, not alice's second - so when b1 completes, a2
    // cannot have finished a whole attack yet.
    JobResult res;
    ASSERT_TRUE(sched.waitResult(b1, &res));
    EXPECT_EQ(res.state, JobState::Done);
    auto a2_then = sched.status(a2);
    ASSERT_TRUE(a2_then.has_value());
    EXPECT_NE(a2_then->state, JobState::Done)
        << "FIFO would have run alice's second job before bob's";

    ASSERT_TRUE(sched.waitResult(a2, &res));
    EXPECT_EQ(res.state, JobState::Done);
    ASSERT_TRUE(sched.waitResult(a1, &res));
    EXPECT_EQ(res.state, JobState::Done);
}

TEST(ServeScheduler, RssBudgetKeepsChargedJobsSerial)
{
    TempFile dump(attackDumpBytes(MiB(4)));
    SchedulerOptions opts;
    opts.max_concurrent_jobs = 4;
    opts.per_job_streaming_bytes = MiB(4);
    opts.rss_budget_bytes = MiB(4); // room for exactly one charge
    JobScheduler sched(opts);

    uint64_t j1 = submitAttack(sched, dump.path);
    uint64_t j2 = submitAttack(sched, dump.path);

    size_t max_running = 0;
    auto terminal = [&](uint64_t id) {
        auto st = sched.status(id);
        return st.has_value() && jobStateTerminal(st->state);
    };
    while (!terminal(j1) || !terminal(j2)) {
        max_running = std::max(max_running, sched.runningJobs());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_LE(max_running, 1u);

    JobResult res;
    ASSERT_TRUE(sched.waitResult(j1, &res));
    EXPECT_EQ(res.state, JobState::Done);
    ASSERT_TRUE(sched.waitResult(j2, &res));
    EXPECT_EQ(res.state, JobState::Done);
}

TEST(ServeScheduler, LoneJobRunsEvenOverBudget)
{
    TempFile dump(attackDumpBytes(MiB(4)));
    SchedulerOptions opts;
    opts.rss_budget_bytes = 0; // nothing fits...
    JobScheduler sched(opts);
    uint64_t id = submitAttack(sched, dump.path);
    JobResult res;
    ASSERT_TRUE(sched.waitResult(id, &res));
    // ...yet a lone job is always admitted: the budget degrades to
    // serial execution, it never deadlocks the queue.
    EXPECT_EQ(res.state, JobState::Done);
}

TEST(ServeScheduler, CancelDequeuesQueuedJob)
{
    TempFile dump(attackDumpBytes(MiB(4)));
    SchedulerOptions opts;
    opts.max_concurrent_jobs = 1;
    JobScheduler sched(opts);

    uint64_t j1 = submitAttack(sched, dump.path);
    uint64_t j2 = submitAttack(sched, dump.path); // queued behind j1
    EXPECT_TRUE(sched.cancel(j2));

    JobResult res;
    ASSERT_TRUE(sched.waitResult(j2, &res));
    EXPECT_EQ(res.state, JobState::Cancelled);
    EXPECT_TRUE(res.text.empty());

    // The running job is untouched.
    ASSERT_TRUE(sched.waitResult(j1, &res));
    EXPECT_EQ(res.state, JobState::Done);

    // Terminal and unknown ids are polite no-ops.
    EXPECT_FALSE(sched.cancel(j2));
    EXPECT_FALSE(sched.cancel(j1));
    EXPECT_FALSE(sched.cancel(99999));
}

TEST(ServeScheduler, CancelStopsRunningJobWithoutTouchingOthers)
{
    // A big dump with many planted keys: mining + search take long
    // enough that the cancel lands mid-scan, never post-completion.
    TempFile slow_dump(attackDumpBytes(MiB(16), 64, 4));
    TempFile fast_dump(attackDumpBytes(MiB(4)));
    SchedulerOptions opts;
    opts.max_concurrent_jobs = 2;
    JobScheduler sched(opts);

    uint64_t slow = submitAttack(sched, slow_dump.path, "slow");
    uint64_t fast = submitAttack(sched, fast_dump.path, "fast");

    // Wait for the slow job to be admitted, then cancel it mid-job.
    while (true) {
        auto st = sched.status(slow);
        ASSERT_TRUE(st.has_value());
        if (st->state == JobState::Running)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(sched.cancel(slow));

    JobResult res;
    ASSERT_TRUE(sched.waitResult(slow, &res));
    EXPECT_EQ(res.state, JobState::Cancelled);
    EXPECT_TRUE(res.error.empty());

    // The concurrent job is unaffected by its neighbour's cancel.
    ASSERT_TRUE(sched.waitResult(fast, &res));
    EXPECT_EQ(res.state, JobState::Done);
    EXPECT_NE(res.text.find("XTS master keys"), std::string::npos);
}

TEST(ServeScheduler, FailedJobReportsErrorNotText)
{
    // Valid at submit, gone at run: the job must fail cleanly, not
    // take the scheduler down (openDumpSource would cb_fatal).
    TempFile dump(attackDumpBytes(KiB(64)));
    SchedulerOptions opts;
    opts.max_concurrent_jobs = 1;
    JobScheduler sched(opts);

    // Park a job in front so the doomed one stays queued while we
    // delete its dump out from under it.
    TempFile first(attackDumpBytes(MiB(4)));
    uint64_t blocker = submitAttack(sched, first.path);
    uint64_t doomed = submitAttack(sched, dump.path);
    std::remove(dump.path.c_str());

    JobResult res;
    ASSERT_TRUE(sched.waitResult(doomed, &res));
    EXPECT_EQ(res.state, JobState::Failed);
    EXPECT_NE(res.error.find("disappeared"), std::string::npos);
    EXPECT_TRUE(res.text.empty());

    ASSERT_TRUE(sched.waitResult(blocker, &res));
    EXPECT_EQ(res.state, JobState::Done);

    auto st = sched.status(doomed);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Failed);
    EXPECT_FALSE(st->error.empty());
}

TEST(ServeScheduler, DrainCancelsEverythingAndRefusesNewWork)
{
    TempFile slow_dump(attackDumpBytes(MiB(16), 64, 4));
    TempFile dump(attackDumpBytes(MiB(4)));
    SchedulerOptions opts;
    opts.max_concurrent_jobs = 1;
    JobScheduler sched(opts);

    uint64_t running = submitAttack(sched, slow_dump.path);
    uint64_t queued = submitAttack(sched, dump.path);

    sched.drain(/*cancel_running=*/true);
    EXPECT_EQ(sched.runningJobs(), 0u);
    EXPECT_EQ(sched.queuedJobs(), 0u);

    auto st = sched.status(running);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Cancelled);
    st = sched.status(queued);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Cancelled);

    std::string error;
    JobSpec spec;
    spec.kind = JobKind::Attack;
    spec.dump_path = dump.path;
    EXPECT_EQ(sched.submit(spec, &error), 0u);
    EXPECT_NE(error.find("draining"), std::string::npos);

    sched.drain(true); // idempotent
}

TEST(ServeScheduler, UnknownIdsAreHandled)
{
    JobScheduler sched;
    EXPECT_FALSE(sched.status(1).has_value());
    JobResult res;
    EXPECT_FALSE(sched.waitResult(1, &res));
    EXPECT_FALSE(sched.cancel(1));
    EXPECT_TRUE(sched.list().empty());
}

//
// Server over loopback
//

TEST(ServeServer, EphemeralPortBindsAndReports)
{
    JobServer server; // 127.0.0.1:0
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    EXPECT_EQ(server.address(), "127.0.0.1");
    EXPECT_GT(server.port(), 0u);
    EXPECT_FALSE(server.shutdownRequested());
    server.stop();
    server.stop(); // idempotent
}

TEST(ServeServer, AddressInUseIsAnActionableError)
{
    JobServer first;
    std::string error;
    ASSERT_TRUE(first.start(&error)) << error;

    ServerOptions opts;
    opts.bind.port = first.port();
    JobServer second(opts);
    EXPECT_FALSE(second.start(&error));
    EXPECT_NE(error.find("address already in use"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("another instance"), std::string::npos);
}

TEST(ServeServer, EndToEndJobOverLoopback)
{
    TempFile dump(attackDumpBytes(MiB(4)));
    auto src = exec::openDumpSource(dump.path);
    std::string expected =
        attack::renderAttackResult(attack::runColdBootAttack(*src));

    JobServer server;
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    JobClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;

    JobSpec spec;
    spec.kind = JobKind::Attack;
    spec.dump_path = dump.path;
    spec.client_id = "net-tester";
    uint64_t id = client.submit(spec, &error);
    ASSERT_NE(id, 0u) << error;

    JobResult res;
    ASSERT_TRUE(client.result(id, &res, &error)) << error;
    EXPECT_EQ(res.state, JobState::Done);
    EXPECT_EQ(res.text, expected);

    JobStatus st;
    ASSERT_TRUE(client.status(id, &st, &error)) << error;
    EXPECT_EQ(st.job_id, id);
    EXPECT_EQ(st.state, JobState::Done);
    EXPECT_EQ(st.client_id, "net-tester");

    std::vector<JobStatus> jobs;
    ASSERT_TRUE(client.list(&jobs, &error)) << error;
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].job_id, id);

    // Cancel of a finished job: false without a protocol error.
    error.clear();
    EXPECT_FALSE(client.cancel(id, &error));
    EXPECT_TRUE(error.empty()) << error;

    // Unknown ids travel back as typed errors.
    EXPECT_FALSE(client.status(9999, &st, &error));
    EXPECT_NE(error.find("no such job"), std::string::npos);
}

TEST(ServeServer, RejectsBadSubmissionsWithoutDying)
{
    JobServer server;
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    JobClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error));
    JobSpec spec;
    spec.kind = JobKind::Attack;
    spec.dump_path = "/nonexistent/test_serve_missing.img";
    EXPECT_EQ(client.submit(spec, &error), 0u);
    EXPECT_NE(error.find("cannot stat"), std::string::npos);

    // Same connection still serves follow-up requests.
    std::vector<JobStatus> jobs;
    EXPECT_TRUE(client.list(&jobs, &error)) << error;
    EXPECT_TRUE(jobs.empty());
}

TEST(ServeServer, MalformedFrameDropsOnlyThatConnection)
{
    JobServer server;
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // A hostile peer: garbage where the frame header should be.
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(server.port());
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                        sizeof(sa)),
              0);
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);
    // The server drops the connection: recv sees EOF, or ECONNRESET
    // when the server's close outruns its unread garbage bytes.
    char byte;
    ssize_t got = recv(fd, &byte, 1, 0);
    EXPECT_TRUE(got == 0 || (got < 0 && errno == ECONNRESET))
        << got << " errno=" << errno;
    close(fd);

    // A well-formed client right after is served normally.
    JobClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;
    std::vector<JobStatus> jobs;
    EXPECT_TRUE(client.list(&jobs, &error)) << error;
}

TEST(ServeServer, ShutdownRequestRaisesFlag)
{
    JobServer server;
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    JobClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error));
    EXPECT_FALSE(server.shutdownRequested());
    ASSERT_TRUE(client.shutdown(&error)) << error;
    EXPECT_TRUE(server.shutdownRequested());
}

TEST(ServeServer, StopUnderLoadCancelsRunningJobs)
{
    TempFile slow_dump(attackDumpBytes(MiB(16), 64, 4));
    JobServer server;
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    JobClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error));
    JobSpec spec;
    spec.kind = JobKind::Attack;
    spec.dump_path = slow_dump.path;
    uint64_t id = client.submit(spec, &error);
    ASSERT_NE(id, 0u) << error;

    // Stop while the job runs: the drain cancel-raises it and stop()
    // returns promptly instead of waiting out a 16 MiB attack.
    server.stop();
    auto st = server.scheduler().status(id);
    ASSERT_TRUE(st.has_value());
    EXPECT_TRUE(jobStateTerminal(st->state));
}

//
// Analysis sessions (the state machines under the jobs)
//

TEST(AnalysisSession, AttackSessionWalksStagesExplicitly)
{
    auto bytes = attackDumpBytes(MiB(4));
    exec::MemoryDumpSource src({bytes.data(), bytes.size()});

    attack::AttackSession session(src);
    EXPECT_EQ(session.stage(), attack::SessionStage::Mine);
    EXPECT_FALSE(session.finished());

    // Mine -> Search (one step for the single default variant) ->
    // Pair -> Done.
    EXPECT_TRUE(session.step());
    EXPECT_EQ(session.stage(), attack::SessionStage::Search);
    auto cp = session.checkpoint();
    EXPECT_GT(cp.mined_keys, 0u);
    EXPECT_EQ(cp.search_passes_done, 0u);

    EXPECT_TRUE(session.step());
    EXPECT_EQ(session.stage(), attack::SessionStage::Pair);
    cp = session.checkpoint();
    EXPECT_EQ(cp.search_passes_done, 1u);
    EXPECT_GT(cp.recovered_keys, 0u);

    EXPECT_FALSE(session.step());
    EXPECT_EQ(session.stage(), attack::SessionStage::Done);
    EXPECT_TRUE(session.finished());
    cp = session.checkpoint();
    EXPECT_GT(cp.xts_pairs, 0u);
    EXPECT_GT(cp.elapsed_seconds, 0.0);

    // Stepping a terminal session is a no-op.
    EXPECT_FALSE(session.step());

    // The stepwise walk produced the same rendering as the one-shot
    // wrapper (which itself runs through a session).
    auto report = session.takeReport();
    auto oneshot = attack::runColdBootAttack(src);
    EXPECT_EQ(attack::renderAttackResult(report),
              attack::renderAttackResult(oneshot));
    EXPECT_GT(report.mib_per_second, 0.0);
}

TEST(AnalysisSession, SearchRunsOneStepPerKeySize)
{
    auto bytes = attackDumpBytes(MiB(1));
    exec::MemoryDumpSource src({bytes.data(), bytes.size()});

    attack::PipelineParams params;
    params.key_sizes = {crypto::AesKeySize::Aes128,
                        crypto::AesKeySize::Aes192,
                        crypto::AesKeySize::Aes256};
    attack::AttackSession session(src, params);
    EXPECT_TRUE(session.step()); // mine
    for (size_t pass = 1; pass <= 3; ++pass) {
        EXPECT_TRUE(session.step());
        EXPECT_EQ(session.checkpoint().search_passes_done, pass);
    }
    EXPECT_EQ(session.stage(), attack::SessionStage::Pair);
    EXPECT_FALSE(session.step());
    EXPECT_EQ(session.stage(), attack::SessionStage::Done);
}

TEST(AnalysisSession, CancelMovesSessionToCancelledState)
{
    auto bytes = attackDumpBytes(MiB(1));
    exec::MemoryDumpSource src({bytes.data(), bytes.size()});

    attack::AttackSession session(src);
    session.cancelToken().requestCancel();
    EXPECT_THROW(session.step(), exec::CancelledError);
    EXPECT_EQ(session.stage(), attack::SessionStage::Cancelled);
    EXPECT_TRUE(session.finished());
    EXPECT_TRUE(session.error().empty()); // cancelled, not failed
    EXPECT_EQ(session.checkpoint().stage,
              attack::SessionStage::Cancelled);
    // Terminal: further steps are no-ops, no rethrow.
    EXPECT_FALSE(session.step());
}

TEST(AnalysisSession, MineSessionMatchesDirectMiner)
{
    auto bytes = attackDumpBytes(MiB(2));
    exec::MemoryDumpSource src({bytes.data(), bytes.size()});

    attack::MinerStats direct_stats;
    auto direct =
        attack::mineScramblerKeys(src, {}, &direct_stats);

    attack::MineSession session(src);
    session.runToCompletion();
    EXPECT_EQ(session.stage(), attack::SessionStage::Done);
    ASSERT_EQ(session.minedKeys().size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(session.minedKeys()[i].key, direct[i].key);
        EXPECT_EQ(session.minedKeys()[i].occurrences,
                  direct[i].occurrences);
    }
    EXPECT_EQ(session.stats().blocks_scanned,
              direct_stats.blocks_scanned);
    EXPECT_EQ(session.stats().litmus_hits,
              direct_stats.litmus_hits);

    // Rendering is deterministic given the same inputs.
    EXPECT_EQ(attack::renderMineResult(session.stats(),
                                       session.minedKeys(), 10),
              attack::renderMineResult(direct_stats, direct, 10));
}

TEST(AnalysisSession, DescrambleSessionWritesXoredImage)
{
    auto bytes = attackDumpBytes(MiB(1));
    exec::MemoryDumpSource src({bytes.data(), bytes.size()});
    TempFile out;

    attack::DescrambleSession session(src, out.path);
    session.runToCompletion();
    ASSERT_EQ(session.stage(), attack::SessionStage::Done);

    const auto &result = session.result();
    EXPECT_EQ(result.lines, bytes.size() / 64);
    EXPECT_EQ(result.out_path, out.path);
    EXPECT_GT(result.mined_keys, 0u);
    EXPECT_EQ(result.sha256_hex.size(), 64u);

    // The output is the input XOR the top-ranked mined key, line by
    // line.
    auto mined = attack::mineScramblerKeys(src);
    ASSERT_FALSE(mined.empty());
    std::vector<uint8_t> expected(bytes);
    for (size_t i = 0; i < expected.size(); ++i)
        expected[i] ^= mined[0].key[i & 63];

    std::FILE *f = std::fopen(out.path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<uint8_t> written(bytes.size());
    ASSERT_EQ(std::fread(written.data(), 1, written.size(), f),
              written.size());
    EXPECT_EQ(std::fgetc(f), EOF); // no trailing bytes
    std::fclose(f);
    EXPECT_EQ(written, expected);

    std::string text = attack::renderDescrambleResult(result);
    EXPECT_NE(text.find(result.sha256_hex), std::string::npos);
    EXPECT_NE(text.find(out.path), std::string::npos);
}

TEST(AnalysisSession, DescrambleFailureIsCapturedNotFatal)
{
    auto bytes = attackDumpBytes(MiB(1));
    exec::MemoryDumpSource src({bytes.data(), bytes.size()});

    attack::DescrambleSession session(
        src, "/nonexistent/test_serve_dir/out.img");
    EXPECT_TRUE(session.step()); // mine succeeds
    EXPECT_EQ(session.stage(), attack::SessionStage::Descramble);
    EXPECT_THROW(session.step(), std::runtime_error);
    EXPECT_EQ(session.stage(), attack::SessionStage::Failed);
    EXPECT_NE(session.error().find("cannot open"),
              std::string::npos);
    EXPECT_EQ(session.checkpoint().error, session.error());
    EXPECT_FALSE(session.step());
}

TEST(AnalysisSession, RenderersAreFormatStable)
{
    attack::PipelineReport report;
    report.mined_keys.resize(3);
    std::string summary = attack::renderAttackSummary(report);
    EXPECT_EQ(summary, "mined 3 candidate keys; recovered 0 AES "
                       "table(s); 0 XTS pair(s);");
    EXPECT_EQ(summary.back(), ';'); // no trailing newline
    EXPECT_EQ(attack::renderAttackKeys(report), "");
    EXPECT_EQ(attack::renderAttackResult(report), summary + "\n");
}

} // anonymous namespace
} // namespace coldboot::serve
