/**
 * @file
 * Coverage for the thinner corners: logging levels, hex dump
 * rendering, per-channel scrambler seed independence, pipelined
 * engine bubbles, multi-key-size pipeline plumbing, and cross-media
 * DIMM behaviour in machines.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attack/attack_pipeline.hh"
#include "common/hex.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "crypto/aes.hh"
#include "dram/dram_module.hh"
#include "engine/pipelined_engines.hh"
#include "memctrl/memory_controller.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"

namespace coldboot
{
namespace
{

TEST(Logging, LevelsAreOrdered)
{
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(logLevel(), LogLevel::Info);
}

TEST(Hex, DumpAlignsPartialTail)
{
    std::vector<uint8_t> data(19, 0x41);
    std::string dump = hexDump(data);
    // Two rows: one full, one partial; printable column present.
    EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
    EXPECT_NE(dump.find("|AAA|"), std::string::npos);
}

TEST(MemoryController, ChannelsGetDistinctSeeds)
{
    using namespace memctrl;
    MemoryController mc(CpuGeneration::Skylake, 2, 1234);
    uint8_t k0[64], k1[64];
    mc.scrambler(0).lineKey(0, k0);
    mc.scrambler(1).lineKey(0, k1);
    EXPECT_NE(0, memcmp(k0, k1, 64));
    // reseed() must also diversify per channel.
    mc.reseed(777);
    mc.scrambler(0).lineKey(0, k0);
    mc.scrambler(1).lineKey(0, k1);
    EXPECT_NE(0, memcmp(k0, k1, 64));
}

TEST(PipelinedEngines, BubblesDoNotCorruptStreams)
{
    // Requests separated by idle cycles still produce correct
    // keystreams (pipeline valid bits must drain cleanly).
    Xoshiro256StarStar rng(99);
    std::vector<uint8_t> key(32), nonce(8);
    rng.fillBytes(key);
    rng.fillBytes(nonce);
    engine::PipelinedChaChaEngine eng(key, nonce, 8);
    crypto::ChaCha reference(key, nonce, 8);

    std::vector<engine::LineCompletion> done;
    eng.request(1, 1);
    for (int i = 0; i < 40; ++i) { // drain fully
        eng.clock();
        for (auto &c : eng.drain())
            done.push_back(c);
    }
    eng.request(2, 2);
    while (eng.busy()) {
        eng.clock();
        for (auto &c : eng.drain())
            done.push_back(c);
    }
    ASSERT_EQ(done.size(), 2u);
    for (const auto &c : done) {
        uint8_t expect[64];
        reference.keystreamBlock(c.req_id, expect);
        EXPECT_EQ(0, memcmp(c.keystream.data(), expect, 64));
    }
}

TEST(Pipeline, MultiKeySizeSearchesEachVariant)
{
    // An empty dump: the pipeline must run one search per requested
    // variant and aggregate the stats.
    platform::MemoryImage dump(KiB(64));
    Xoshiro256StarStar rng(7);
    rng.fillBytes(dump.bytesMutable());

    attack::PipelineParams params;
    params.key_sizes = {crypto::AesKeySize::Aes128,
                        crypto::AesKeySize::Aes192,
                        crypto::AesKeySize::Aes256};
    auto report = attack::runColdBootAttack(dump, params);
    EXPECT_EQ(report.search_stats.blocks_scanned,
              3 * (KiB(64) / 64));
}

TEST(Machine, MixedMediaChannels)
{
    // One volatile + one non-volatile DIMM in a dual-channel
    // machine: after power-off and a long wait, only the volatile
    // one decays.
    using dram::DramModule;
    platform::Machine m(platform::cpuModelByName("i5-6400"),
                        platform::BiosConfig{}, 2, 11);
    auto volatile_dimm = std::make_shared<DramModule>(
        dram::Generation::DDR4, MiB(1), dram::DecayParams{}, 12);
    auto nv_dimm = std::make_shared<DramModule>(
        dram::Generation::DDR4, MiB(1), dram::DecayParams{}, 13,
        "nv", dram::Media::NonVolatileDimm);
    m.installDimm(0, volatile_dimm);
    m.installDimm(1, nv_dimm);
    m.boot();
    platform::fillWorkload(m, {}, 14);
    m.shutdown();

    uint64_t volatile_flips = volatile_dimm->elapse(30.0);
    uint64_t nv_flips = nv_dimm->elapse(30.0);
    EXPECT_GT(volatile_flips, 0u);
    EXPECT_EQ(nv_flips, 0u);
}

TEST(Aes, RoundPrimitivesComposeToBlockCipher)
{
    // aesAddRoundKey + aesRoundEncrypt (the pipeline stages) applied
    // sequentially must equal encryptBlock.
    Xoshiro256StarStar rng(21);
    std::vector<uint8_t> key(32);
    rng.fillBytes(key);
    crypto::Aes aes(key);

    uint8_t state[16], expect[16];
    std::span<uint8_t> s(state, 16);
    rng.fillBytes(s);
    aes.encryptBlock(state, expect);

    auto sched = aes.schedule();
    crypto::aesAddRoundKey(state, sched.data());
    for (int round = 1; round <= aes.rounds(); ++round)
        crypto::aesRoundEncrypt(state, sched.data() + 16 * round,
                                round == aes.rounds());
    EXPECT_EQ(0, memcmp(state, expect, 16));
}

} // anonymous namespace
} // namespace coldboot
