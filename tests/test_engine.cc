/**
 * @file
 * Engine tests: Table II parameters, the Figure 6 queueing model,
 * the Figure 7 overhead model, and the defence validation - a
 * machine whose memory is ChaCha8/AES-CTR encrypted must defeat the
 * cold boot attack while remaining functionally transparent.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "attack/attack_pipeline.hh"
#include "attack/ddr3_attack.hh"
#include "attack/litmus.hh"
#include "common/bits.hh"
#include "common/hex.hh"
#include "common/units.hh"
#include "dram/dram_module.hh"
#include "engine/cipher_engine.hh"
#include "engine/encrypted_controller.hh"
#include "engine/latency_sim.hh"
#include "engine/power_model.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "volume/veracrypt_volume.hh"

namespace coldboot::engine
{
namespace
{

using platform::BiosConfig;
using platform::cpuModelByName;
using platform::Machine;

TEST(CipherEngine, TableIIDelays)
{
    // The paper's Table II pipeline delays, to within rounding.
    struct Expect
    {
        CipherKind kind;
        double freq;
        int cycles;
        double delay_ns;
    };
    const Expect expected[] = {
        {CipherKind::Aes128, 2.40, 13, 5.40},
        {CipherKind::Aes256, 2.40, 17, 7.08},
        {CipherKind::ChaCha8, 1.96, 18, 9.18},
        {CipherKind::ChaCha12, 1.96, 26, 13.27},
        {CipherKind::ChaCha20, 1.96, 42, 21.42},
    };
    for (const auto &e : expected) {
        const EngineSpec &spec = engineSpec(e.kind);
        EXPECT_DOUBLE_EQ(spec.max_freq_ghz, e.freq)
            << cipherKindName(e.kind);
        EXPECT_EQ(spec.cycles_per_line, e.cycles);
        EXPECT_NEAR(psToNs(spec.pipelineDelayPs()), e.delay_ns, 0.05)
            << cipherKindName(e.kind);
    }
}

TEST(CipherEngine, AesThroughputMatchesPaper)
{
    // "39 GB/s" for the 1-cycle-per-round AES design at 2.4 GHz.
    EXPECT_NEAR(engineSpec(CipherKind::Aes128).throughputGBs(), 38.4,
                0.5);
    // ChaCha produces a full line per counter.
    EXPECT_GT(engineSpec(CipherKind::ChaCha8).throughputGBs(), 100.0);
}

TEST(CipherEngine, PowerScalesWithUtilization)
{
    const EngineSpec &spec = engineSpec(CipherKind::ChaCha8);
    EXPECT_LT(spec.powerAtUtilizationMw(0.2),
              spec.powerAtUtilizationMw(1.0));
    EXPECT_GT(spec.powerAtUtilizationMw(0.0), 0.0); // leakage
}

TEST(LatencySim, ChaCha8NeverExposedAtAnyLoad)
{
    // The headline claim: ChaCha8 completes under 12.5 ns at every
    // load, so encrypted reads have zero exposed latency.
    for (double u : {0.1, 0.3, 0.5, 0.8, 1.0}) {
        auto r = simulateBurst(engineSpec(CipherKind::ChaCha8),
                               dram::ddr4_2400(), {u, 18});
        EXPECT_EQ(r.max_window_exposure_ps, 0) << "u=" << u;
        EXPECT_LT(r.max_keystream_latency_ps, nsToPs(12.5));
    }
}

TEST(LatencySim, ChaCha20AlwaysExposed)
{
    auto r = simulateBurst(engineSpec(CipherKind::ChaCha20),
                           dram::ddr4_2400(), {0.1, 18});
    EXPECT_GT(r.max_window_exposure_ps, 0);
}

TEST(LatencySim, ChaCha12ExposedEvenAtLowLoad)
{
    // 13.27 ns pipeline > 12.5 ns minimum CAS: marginally exposed.
    auto r = simulateBurst(engineSpec(CipherKind::ChaCha12),
                           dram::ddr4_2400(), {0.1, 18});
    EXPECT_GT(r.max_window_exposure_ps, 0);
    EXPECT_LT(r.max_window_exposure_ps, nsToPs(1.0));
}

TEST(LatencySim, AesFastAtLowLoadQueuesAtHighLoad)
{
    const auto &aes = engineSpec(CipherKind::Aes128);
    auto low = simulateBurst(aes, dram::ddr4_2400(), {0.1, 18});
    auto high = simulateBurst(aes, dram::ddr4_2400(), {1.0, 18});
    // Low load: just the pipeline delay, well under the window.
    EXPECT_EQ(low.max_window_exposure_ps, 0);
    EXPECT_NEAR(psToNs(low.max_keystream_latency_ps), 5.4, 0.1);
    // High load: the 4-counters-per-line fan-out builds a queue.
    EXPECT_GT(high.max_keystream_latency_ps,
              low.max_keystream_latency_ps);
    EXPECT_GT(high.max_window_exposure_ps, 0);
    // Against the realistic bus-serialized accounting the data bus
    // itself backs up, keeping AES effectively hidden.
    EXPECT_EQ(high.max_bus_exposure_ps, 0);
}

TEST(LatencySim, LatencyMonotoneInUtilizationForAes)
{
    const auto &aes = engineSpec(CipherKind::Aes256);
    Picoseconds prev = 0;
    for (double u : {0.2, 0.4, 0.6, 0.8, 1.0}) {
        auto r = simulateBurst(aes, dram::ddr4_2400(), {u, 18});
        EXPECT_GE(r.max_keystream_latency_ps, prev) << u;
        prev = r.max_keystream_latency_ps;
    }
}

TEST(LatencySim, SweepCoversAllEnginesAndLoads)
{
    auto rows = figure6Sweep();
    EXPECT_EQ(rows.size(), 5u * 10u);
    std::set<CipherKind> kinds;
    for (const auto &row : rows)
        kinds.insert(row.kind);
    EXPECT_EQ(kinds.size(), 5u);
}

TEST(PowerModel, FourReferenceCpus)
{
    const auto &cpus = referenceCpus();
    ASSERT_EQ(cpus.size(), 4u);
    EXPECT_EQ(cpus[0].name, "Atom N280");
    EXPECT_EQ(cpus[0].channels, 1);
    EXPECT_EQ(cpus[3].channels, 3);
}

TEST(PowerModel, Figure7Shapes)
{
    auto rows = figure7Overheads();
    ASSERT_EQ(rows.size(), 8u); // 4 CPUs x 2 engines
    for (const auto &row : rows) {
        // "Area overheads are uniformly low" (about 1% or below).
        EXPECT_LT(row.area_fraction, 0.012) << row.cpu;
        if (row.cpu == "Atom N280") {
            // Up to ~17% at full utilization, below 6% at 20%.
            EXPECT_LT(row.power_fraction_full, 0.18);
            EXPECT_GT(row.power_fraction_full, 0.10);
            EXPECT_LT(row.power_fraction_20, 0.06);
        } else {
            // "All below 3%" for the bigger cores.
            EXPECT_LT(row.power_fraction_full, 0.03) << row.cpu;
        }
    }
}

//
// Encrypted memory controller
//

TEST(EncryptedMemory, FunctionalTransparency)
{
    for (auto factory :
         {chachaEncryptionFactory(8), aesCtrEncryptionFactory(16)}) {
        Machine m(cpuModelByName("i5-6400"), BiosConfig{}, 1, 71,
                  factory);
        m.installDimm(0, std::make_shared<dram::DramModule>(
                             dram::Generation::DDR4, MiB(1),
                             dram::DecayParams{}, 72));
        m.boot();
        std::vector<uint8_t> data(256, 0x5e);
        m.writePhys(KiB(512), data);
        std::vector<uint8_t> back(256);
        m.readPhys(KiB(512), back);
        EXPECT_EQ(back, data);
    }
}

TEST(EncryptedMemory, KeystreamsPassScramblerJob)
{
    // The signal-integrity job: near-50% bit balance on the wire.
    ChaChaMemoryEncryptor enc(123, 0, 8);
    size_t ones = 0;
    uint8_t key[64];
    for (uint64_t line = 0; line < 4096; ++line) {
        enc.lineKey(line * 64, key);
        ones += hammingWeight({key, 64});
    }
    double frac = static_cast<double>(ones) / (4096.0 * 512);
    EXPECT_GT(frac, 0.49);
    EXPECT_LT(frac, 0.51);
}

TEST(EncryptedMemory, NoLitmusStructureInKeystreams)
{
    // The DDR4 attack's foothold must vanish: encrypted "keys" never
    // satisfy the scrambler byte-pair invariants.
    ChaChaMemoryEncryptor chacha(9, 0, 8);
    AesCtrMemoryEncryptor aes(9, 0, 16);
    uint8_t key[64];
    int hits = 0;
    for (uint64_t line = 0; line < 4096; ++line) {
        chacha.lineKey(line * 64, key);
        hits += attack::scramblerKeyLitmus({key, 64}, 32);
        aes.lineKey(line * 64, key);
        hits += attack::scramblerKeyLitmus({key, 64}, 32);
    }
    EXPECT_EQ(hits, 0);
}

TEST(EncryptedMemory, ReseedChangesEverything)
{
    ChaChaMemoryEncryptor enc(1, 0, 8);
    uint8_t k1[64], k2[64];
    enc.lineKey(0x1000, k1);
    enc.reseed(2);
    enc.lineKey(0x1000, k2);
    EXPECT_NE(0, memcmp(k1, k2, 64));
}

TEST(EncryptedMemory, ColdBootAttackDefeated)
{
    // E9: rebuild the end-to-end attack scenario on a ChaCha8-
    // encrypted machine; key mining must find nothing usable and no
    // AES table may be recovered.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 81,
                   chachaEncryptionFactory(8));
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, MiB(4),
                              dram::DecayParams{}, 82));
    victim.boot();
    platform::fillWorkload(victim, {}, 83);
    auto vf = volume::VolumeFile::create("pw", 8, 84);
    auto mounted =
        volume::MountedVolume::mount(victim, vf, "pw", MiB(3) + 16);
    ASSERT_TRUE(mounted);

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1, 85);
    auto cold = platform::coldBootTransfer(victim, attacker, 0);

    attack::PipelineParams params;
    params.search.scan_start = MiB(3) - KiB(64);
    params.search.scan_bytes = KiB(128);
    auto report = attack::runColdBootAttack(cold.dump, params);

    EXPECT_TRUE(report.recovered.empty());
    EXPECT_TRUE(report.xts_pairs.empty());
    // Mining may pick up decayed-ground-state artifacts, but the
    // dominant per-key clusters of a real scrambler must be absent:
    // no cluster may reach the occurrence counts real keys show.
    for (const auto &mk : report.mined_keys)
        EXPECT_LT(mk.occurrences, 10u);
}

TEST(EncryptedMemory, Ddr3StyleAttackAlsoDefeated)
{
    // The universal-key attack yields garbage against encryption.
    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, 91,
                   chachaEncryptionFactory(8));
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, MiB(1),
                              dram::DecayParams{}, 92));
    victim.boot();
    platform::fillWorkload(victim, {}, 93);
    auto truth = victim.dumpMemory();

    BiosConfig attacker_bios;
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1, 94);
    auto cold = platform::coldBootTransfer(victim, attacker, 0);
    auto universal = attack::recoverDdr3UniversalKey(cold.dump);
    auto recovered = cold.dump;
    attack::descrambleWithUniversalKey(recovered, universal);

    size_t skip = 256 * 1024;
    size_t diff = hammingDistance(recovered.bytes().subspan(skip),
                                  truth.bytes().subspan(skip));
    double frac = static_cast<double>(diff) /
                  ((recovered.size() - skip) * 8.0);
    EXPECT_GT(frac, 0.3);
}

} // anonymous namespace
} // namespace coldboot::engine
