/**
 * @file
 * coldboot-fuzz - driver for the deterministic property-fuzzing
 * subsystem (src/fuzz): walks a base-seed range through the
 * differential-oracle catalogue, coverage-guided-lite, replays the
 * checked-in corpus, and emits a campaign report whose JSON is
 * byte-identical across runs and worker counts.
 *
 * Exit codes: 0 = every property held, 1 = at least one violation
 * (reproducers printed and reported), 2 = usage error.
 *
 * Examples:
 *   coldboot-fuzz --seed-range 0:500 --profile smoke \
 *       --corpus tests/fuzz_corpus --report fuzz-report.json
 *   coldboot-fuzz --list
 *   coldboot-fuzz --reproduce \
 *       "oracle=miner-planted-keys:seed=123:energy=4:scale=0"
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "fuzz/corpus.hh"
#include "fuzz/harness.hh"
#include "fuzz/oracle.hh"
#include "fuzz/reducer.hh"
#include "obs/fsio.hh"
#include "obs/stats.hh"

using namespace coldboot;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: coldboot-fuzz [options]\n"
        "  --seed-range <a>:<b>  base seeds [a, b) to fuzz"
        " (default 0:100)\n"
        "  --profile smoke|full  smoke honours per-oracle strides;\n"
        "                        full runs everything, harder"
        " (default smoke)\n"
        "  --oracle <name>       restrict to one oracle (repeatable)\n"
        "  --energy <n>          phase-1 mutation budget (default 4)\n"
        "  --scale <n>           input-size class: 64 KiB << n"
        " (default 0)\n"
        "  --threads <n>         1 = serial, N = dedicated pool\n"
        "                        (default: the shared global pool)\n"
        "  --corpus <dir>        also replay every *.corpus file\n"
        "  --report <file>       write the campaign report JSON\n"
        "  --stats-json <file>   write the stats registry as JSON\n"
        "  --no-reduce           skip violation minimization\n"
        "  --list                list the oracle catalogue and exit\n"
        "  --reproduce <line>    replay one reproducer and exit\n");
    return 2;
}

int
listOracles()
{
    for (const fuzz::Oracle *o : fuzz::allOracles())
        std::printf("%-24s stride %u  %s\n", o->name(),
                    o->smokeStride(), o->description());
    return 0;
}

int
reproduce(const std::string &line)
{
    auto parsed = fuzz::parseReproducer(line);
    if (!parsed) {
        std::fprintf(stderr, "unparseable reproducer: %s\n",
                     line.c_str());
        return 2;
    }
    const fuzz::Oracle *oracle = fuzz::findOracle(parsed->first);
    if (!oracle) {
        std::fprintf(stderr, "unknown oracle '%s'\n",
                     parsed->first.c_str());
        return 2;
    }
    auto res = oracle->run(parsed->second);
    if (res.violation) {
        std::printf("VIOLATION %s\n  %s\n",
                    line.c_str(), res.message.c_str());
        std::printf("regression test:\n%s",
                    fuzz::gtestSnippet(parsed->first, parsed->second)
                        .c_str());
        return 1;
    }
    std::printf("ok %s (%zu features)\n", line.c_str(),
                res.features.size());
    return 0;
}

/** Replay a corpus directory; returns the number of violations. */
uint64_t
replayCorpus(const std::string &dir)
{
    std::vector<std::string> errors;
    auto entries = fuzz::loadCorpusDir(dir, &errors);
    for (const auto &e : errors)
        std::fprintf(stderr, "corpus: %s\n", e.c_str());
    uint64_t violations = errors.size();

    for (const auto &entry : entries) {
        const fuzz::Oracle *oracle = fuzz::findOracle(entry.oracle);
        if (!oracle) {
            std::fprintf(stderr,
                         "corpus: %s:%u: unknown oracle '%s'\n",
                         entry.file.c_str(), entry.line,
                         entry.oracle.c_str());
            ++violations;
            continue;
        }
        auto res = oracle->run(entry.params);
        if (res.violation) {
            std::printf("VIOLATION (corpus %s:%u) %s\n  %s\n",
                        entry.file.c_str(), entry.line,
                        fuzz::formatCorpusEntry(entry).c_str(),
                        res.message.c_str());
            ++violations;
        }
    }
    std::printf("corpus: %zu entries replayed, %llu violations\n",
                entries.size(),
                static_cast<unsigned long long>(violations));
    return violations;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    fuzz::CampaignConfig config;
    std::string corpus_dir, report_path, stats_path;
    bool run_campaign = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an argument\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };

        if (arg == "--list")
            return listOracles();
        if (arg == "--reproduce") {
            const char *line = next();
            return line ? reproduce(line) : usage();
        }
        if (arg == "--seed-range") {
            const char *range = next();
            if (!range)
                return usage();
            const char *colon = std::strchr(range, ':');
            char *end_a = nullptr, *end_b = nullptr;
            if (!colon)
                return usage();
            config.seed_begin =
                std::strtoull(range, &end_a, 10);
            config.seed_end =
                std::strtoull(colon + 1, &end_b, 10);
            if (end_a != colon || *end_b != '\0' ||
                config.seed_end < config.seed_begin) {
                std::fprintf(stderr, "bad --seed-range '%s'\n",
                             range);
                return usage();
            }
            continue;
        }
        if (arg == "--profile") {
            const char *p = next();
            if (!p)
                return usage();
            if (std::string(p) == "smoke")
                config.profile =
                    fuzz::CampaignConfig::Profile::Smoke;
            else if (std::string(p) == "full")
                config.profile =
                    fuzz::CampaignConfig::Profile::Full;
            else {
                std::fprintf(stderr, "bad --profile '%s'\n", p);
                return usage();
            }
            continue;
        }
        if (arg == "--oracle") {
            const char *name = next();
            if (!name)
                return usage();
            if (!fuzz::findOracle(name)) {
                std::fprintf(stderr, "unknown oracle '%s'\n", name);
                return usage();
            }
            config.oracle_filter.emplace_back(name);
            continue;
        }
        if (arg == "--energy" || arg == "--scale") {
            const char *v = next();
            if (!v)
                return usage();
            char *end = nullptr;
            unsigned long n = std::strtoul(v, &end, 10);
            if (*end != '\0' || n > 1u << 20) {
                std::fprintf(stderr, "bad %s '%s'\n", arg.c_str(),
                             v);
                return usage();
            }
            (arg == "--energy" ? config.energy : config.scale) =
                static_cast<uint32_t>(n);
            continue;
        }
        if (arg == "--threads") {
            const char *v = next();
            if (!v)
                return usage();
            unsigned n = exec::parseThreadCount(v);
            if (n == 0) {
                std::fprintf(stderr, "--threads: bad count '%s'\n",
                             v);
                return usage();
            }
            config.threads = n;
            continue;
        }
        if (arg == "--corpus") {
            const char *d = next();
            if (!d)
                return usage();
            corpus_dir = d;
            continue;
        }
        if (arg == "--report") {
            const char *f = next();
            if (!f)
                return usage();
            report_path = f;
            continue;
        }
        if (arg == "--stats-json") {
            const char *f = next();
            if (!f)
                return usage();
            stats_path = f;
            continue;
        }
        if (arg == "--no-reduce") {
            config.reduce_violations = false;
            continue;
        }
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        return usage();
    }

    uint64_t violations = 0;

    if (run_campaign && config.seed_end > config.seed_begin) {
        fuzz::CampaignReport report = fuzz::runCampaign(config);
        violations += report.total_violations;

        std::printf(
            "campaign: seeds [%llu, %llu) profile %s: %llu cases, "
            "%llu violations\n",
            static_cast<unsigned long long>(config.seed_begin),
            static_cast<unsigned long long>(config.seed_end),
            config.profile == fuzz::CampaignConfig::Profile::Smoke
                ? "smoke"
                : "full",
            static_cast<unsigned long long>(report.total_cases),
            static_cast<unsigned long long>(
                report.total_violations));
        for (const auto &o : report.oracles)
            std::printf(
                "  %-24s %6llu cases  %3llu interesting  "
                "%3llu features  %llu violations\n",
                o.name.c_str(),
                static_cast<unsigned long long>(o.cases),
                static_cast<unsigned long long>(o.interesting_seeds),
                static_cast<unsigned long long>(o.distinct_features),
                static_cast<unsigned long long>(o.violations));

        for (const auto &v : report.violations) {
            std::printf("VIOLATION %s\n  %s\n",
                        v.reproducer.c_str(), v.message.c_str());
            std::printf("corpus line:\n  %s\n", v.reproducer.c_str());
            std::printf(
                "regression test:\n%s",
                fuzz::gtestSnippet(v.oracle, v.params).c_str());
        }

        if (!report_path.empty())
            obs::writeFileCreatingDirs(report_path, report.toJson(),
                                       "fuzz campaign report");
    }

    if (!corpus_dir.empty())
        violations += replayCorpus(corpus_dir);

    if (!stats_path.empty())
        obs::StatRegistry::global().writeJsonFile(stats_path);

    return violations == 0 ? 0 : 1;
}
