/**
 * @file
 * coldboot-client - command-line client of coldboot-served.
 *
 *   coldboot-client <addr:port> attack <dump.img>
 *   coldboot-client <addr:port> mine <dump.img> [top_n]
 *   coldboot-client <addr:port> descramble <dump.img> <out.img>
 *   coldboot-client <addr:port> status <job_id>
 *   coldboot-client <addr:port> cancel <job_id>
 *   coldboot-client <addr:port> list
 *   coldboot-client <addr:port> shutdown
 *
 * The analysis commands submit, then block for the result and print
 * the server's deterministic rendering - byte-identical to the
 * equivalent one-shot coldboot-tool output for the same dump.
 * `--async` submits and prints only "job <id>" so a caller can poll
 * status / issue a cancel; `--client-id` names the fair-share queue
 * the job lands in.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/tcp_listener.hh"
#include "serve/client.hh"

using namespace coldboot;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: coldboot-client <addr:port> <command> [args]\n"
        "commands:\n"
        "  attack <dump.img>             full key-recovery pipeline\n"
        "  mine <dump.img> [top_n]       scrambler-key mining\n"
        "  descramble <dump.img> <out>   write descrambled image\n"
        "  status <job_id>               one job's status\n"
        "  cancel <job_id>               request cancellation\n"
        "  list                          all jobs on the server\n"
        "  shutdown                      ask the daemon to exit\n"
        "flags (any position):\n"
        "  --client-id <name>   fair-share queue identity\n"
        "  --scan-limit-mib <n> mining scan limit override\n"
        "  --async              submit only; print the job id\n");
    return 2;
}

void
printStatus(const serve::JobStatus &st)
{
    std::printf("job %llu %s %s stage=%s client='%s'",
                static_cast<unsigned long long>(st.job_id),
                serve::jobKindName(st.kind),
                serve::jobStateName(st.state), st.stage.c_str(),
                st.client_id.c_str());
    if (st.total_units > 0) {
        std::printf(" %llu/%llu units",
                    static_cast<unsigned long long>(st.done_units),
                    static_cast<unsigned long long>(st.total_units));
    }
    std::printf(" elapsed=%llums",
                static_cast<unsigned long long>(st.elapsed_ms));
    if (!st.error.empty())
        std::printf(" error='%s'", st.error.c_str());
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string client_id;
    uint64_t scan_limit_bytes = 0;
    bool async = false;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--client-id") {
            if (i + 1 >= argc)
                return usage();
            client_id = argv[++i];
        } else if (arg == "--scan-limit-mib") {
            if (i + 1 >= argc)
                return usage();
            scan_limit_bytes =
                std::strtoull(argv[++i], nullptr, 10) << 20;
        } else if (arg == "--async") {
            async = true;
        } else {
            args.push_back(arg);
        }
    }
    if (args.size() < 2)
        return usage();

    obs::ServeSpec endpoint;
    std::string error;
    if (!obs::parseServeSpec(args[0], &endpoint, &error) ||
        endpoint.port == 0) {
        std::fprintf(stderr, "bad endpoint '%s'%s%s\n",
                     args[0].c_str(), error.empty() ? "" : ": ",
                     error.c_str());
        return usage();
    }
    const std::string &cmd = args[1];

    serve::JobClient client;
    if (!client.connect(endpoint.addr, endpoint.port, &error)) {
        std::fprintf(stderr, "coldboot-client: %s\n", error.c_str());
        return 3;
    }

    auto runJob = [&](serve::JobSpec spec) -> int {
        spec.client_id = client_id;
        spec.scan_limit_bytes = scan_limit_bytes;
        uint64_t id = client.submit(spec, &error);
        if (id == 0) {
            std::fprintf(stderr, "submit failed: %s\n",
                         error.c_str());
            return 3;
        }
        if (async) {
            std::printf("job %llu\n",
                        static_cast<unsigned long long>(id));
            return 0;
        }
        serve::JobResult res;
        if (!client.result(id, &res, &error)) {
            std::fprintf(stderr, "result failed: %s\n",
                         error.c_str());
            return 3;
        }
        if (res.state == serve::JobState::Failed) {
            std::fprintf(stderr, "job %llu failed: %s\n",
                         static_cast<unsigned long long>(id),
                         res.error.c_str());
            return 3;
        }
        if (res.state == serve::JobState::Cancelled) {
            std::fprintf(stderr, "job %llu cancelled\n",
                         static_cast<unsigned long long>(id));
            return 4;
        }
        // The deterministic server rendering, verbatim.
        std::fputs(res.text.c_str(), stdout);
        return 0;
    };

    if (cmd == "attack") {
        if (args.size() < 3)
            return usage();
        serve::JobSpec spec;
        spec.kind = serve::JobKind::Attack;
        spec.dump_path = args[2];
        return runJob(spec);
    }
    if (cmd == "mine") {
        if (args.size() < 3)
            return usage();
        serve::JobSpec spec;
        spec.kind = serve::JobKind::Mine;
        spec.dump_path = args[2];
        if (args.size() > 3)
            spec.top_n = std::strtoull(args[3].c_str(), nullptr, 10);
        return runJob(spec);
    }
    if (cmd == "descramble") {
        if (args.size() < 4)
            return usage();
        serve::JobSpec spec;
        spec.kind = serve::JobKind::Descramble;
        spec.dump_path = args[2];
        spec.out_path = args[3];
        return runJob(spec);
    }
    if (cmd == "status") {
        if (args.size() < 3)
            return usage();
        uint64_t id = std::strtoull(args[2].c_str(), nullptr, 10);
        serve::JobStatus st;
        if (!client.status(id, &st, &error)) {
            std::fprintf(stderr, "status failed: %s\n",
                         error.c_str());
            return 3;
        }
        printStatus(st);
        return 0;
    }
    if (cmd == "cancel") {
        if (args.size() < 3)
            return usage();
        uint64_t id = std::strtoull(args[2].c_str(), nullptr, 10);
        if (!client.cancel(id, &error)) {
            if (!error.empty()) {
                std::fprintf(stderr, "cancel failed: %s\n",
                             error.c_str());
                return 3;
            }
            std::printf("job %llu already terminal\n",
                        static_cast<unsigned long long>(id));
            return 1;
        }
        std::printf("cancel requested for job %llu\n",
                    static_cast<unsigned long long>(id));
        return 0;
    }
    if (cmd == "list") {
        std::vector<serve::JobStatus> jobs;
        if (!client.list(&jobs, &error)) {
            std::fprintf(stderr, "list failed: %s\n", error.c_str());
            return 3;
        }
        for (const auto &st : jobs)
            printStatus(st);
        return 0;
    }
    if (cmd == "shutdown") {
        if (!client.shutdown(&error)) {
            std::fprintf(stderr, "shutdown failed: %s\n",
                         error.c_str());
            return 3;
        }
        std::printf("shutdown requested\n");
        return 0;
    }
    return usage();
}
