/**
 * @file
 * coldboot-tool - command-line front end to the library, in the
 * spirit of the memory-forensics tooling the paper's attack implies.
 *
 *   simulate-victim  build a victim machine with a mounted encrypted
 *                    volume, perform a cold boot transfer, and write
 *                    the captured dump (plus the volume container)
 *                    to disk;
 *   attack           run the full key-recovery pipeline on a dump
 *                    file and print any recovered XTS master keys;
 *   mine             mine scrambler-key candidates from a dump;
 *   info             basic dump statistics;
 *   decrypt          decrypt one sector of a volume container with
 *                    recovered master keys.
 *
 * Example end-to-end session:
 *   coldboot-tool simulate-victim /tmp/dump.img /tmp/vol.bin
 *   coldboot-tool attack /tmp/dump.img
 *   coldboot-tool decrypt /tmp/vol.bin <data_key_hex> <tweak_key_hex> 3
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

#include "attack/attack_pipeline.hh"
#include "attack/sessions.hh"
#include "exec/dump_io.hh"
#include "exec/thread_pool.hh"
#include "common/hex.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "crypto/xts.hh"
#include "obs/flight.hh"
#include "obs/http.hh"
#include "obs/sampler.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "dram/dram_module.hh"
#include "platform/coldboot.hh"
#include "platform/machine.hh"
#include "platform/workload.hh"
#include "simd/simd.hh"
#include "volume/veracrypt_volume.hh"

using namespace coldboot;
using namespace coldboot::platform;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  coldboot-tool simulate-victim <dump.img> <volume.bin>"
        " [mib] [seed] [--warm]\n"
        "  coldboot-tool attack <dump.img> [threads]\n"
        "  coldboot-tool mine <dump.img> [top_n]\n"
        "  coldboot-tool descramble <dump.img> <out.img>\n"
        "  coldboot-tool info <dump.img>\n"
        "  coldboot-tool decrypt <volume.bin> <data_key_hex>"
        " <tweak_key_hex> <sector>\n"
        "  coldboot-tool crash-test <dump.img> [abort]\n"
        "                        sacrificial mode: raise a fatal\n"
        "                        signal mid-mining-run to exercise\n"
        "                        the flight recorder's post-mortem\n"
        "global flags (any command, any position):\n"
        "  --stats-json <file>   write the stats registry as JSON\n"
        "  --trace <file>        write phase spans as Chrome"
        " trace_event JSON\n"
        "  --flight-record <file>\n"
        "                        arm the always-on flight recorder:\n"
        "                        per-thread event rings + post-mortem\n"
        "                        JSON at <file> on SIGSEGV/SIGBUS/\n"
        "                        SIGABRT or cb_fatal; also via the\n"
        "                        COLDBOOT_FLIGHT_RECORD env var\n"
        "  --profile-spans       attach perf-counter deltas (cycles,\n"
        "                        instructions, cache misses) to every\n"
        "                        span, in the trace and as obs.span.*\n"
        "                        stats; also via COLDBOOT_PROFILE_SPANS\n"
        "  --threads <n>         worker threads for parallel scans\n"
        "                        (default: COLDBOOT_THREADS or all"
        " cores)\n"
        "  --no-mmap             stream dumps with buffered reads\n"
        "                        instead of mmap\n"
        "  --simd <backend>      force the kernel backend (avx2,\n"
        "                        sse2 or scalar; default: best the\n"
        "                        CPU supports); also via the\n"
        "                        COLDBOOT_SIMD env var\n"
        "  --serve-obs <[addr:]port>\n"
        "                        serve live telemetry over HTTP\n"
        "                        (/metrics /stats /stats/series\n"
        "                        /trace /flight /progress /healthz);\n"
        "                        also via\n"
        "                        the COLDBOOT_SERVE_OBS env var;\n"
        "                        port 0 picks an ephemeral port\n");
    return 2;
}

/** Output paths the termination-signal handler flushes. */
std::string g_stats_path, g_trace_path;
std::atomic<int> g_signal_seen{0};

/**
 * SIGINT/SIGTERM: flush the requested stats/trace artifacts, then
 * die with the conventional 128+sig status. The flush calls are not
 * strictly async-signal-safe, but the alternative on a Ctrl-C'd
 * multi-hour scan is losing the artifacts entirely - and a second
 * signal (the guard below) still kills the process immediately.
 */
void
onTerminateSignal(int sig)
{
    int expected = 0;
    if (!g_signal_seen.compare_exchange_strong(expected, sig))
        _exit(128 + sig);
    if (!g_stats_path.empty())
        obs::StatRegistry::global().writeJsonFile(g_stats_path);
    if (!g_trace_path.empty())
        obs::PhaseTracer::global().writeTraceFile(g_trace_path);
    _exit(128 + sig);
}

/** getrusage(RUSAGE_SELF) peak RSS in KiB (0 if unavailable). */
uint64_t
peakRssKib()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0)
        return static_cast<uint64_t>(usage.ru_maxrss);
    return 0;
}

/** Dump-streaming backend selected by --no-mmap. */
exec::DumpBackend g_dump_backend = exec::DumpBackend::Auto;

int
cmdSimulateVictim(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string dump_path = argv[0];
    std::string volume_path = argv[1];
    uint64_t mib = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;
    uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 20260705;
    bool warm = false;
    for (int i = 2; i < argc; ++i)
        warm = warm || std::string(argv[i]) == "--warm";

    Machine victim(cpuModelByName("i5-6400"), BiosConfig{}, 1, seed);
    victim.installDimm(0, std::make_shared<dram::DramModule>(
                              dram::Generation::DDR4, MiB(mib),
                              dram::DecayParams{}, seed + 1));
    victim.boot();
    fillWorkload(victim, {}, seed + 2);

    auto vf = volume::VolumeFile::create("hunter2", 16, seed + 3);
    uint64_t keytable_addr = MiB(mib) * 3 / 4 + 16;
    auto mounted = volume::MountedVolume::mount(victim, vf, "hunter2",
                                                keytable_addr);
    std::vector<uint8_t> secret(volume::sectorBytes, 0);
    const char *msg = "top secret: the cake is a lie";
    std::memcpy(secret.data(), msg, std::strlen(msg));
    mounted->writeSector(3, secret);

    BiosConfig attacker_bios;
    attacker_bios.boot_pollution_bytes = KiB(64);
    Machine attacker(cpuModelByName("i5-6600K"), attacker_bios, 1,
                     seed + 4);
    ColdBootParams cold_params;
    cold_params.cool_first = !warm;
    auto cold = coldBootTransfer(victim, attacker, 0, cold_params);

    cold.dump.saveRaw(dump_path);
    std::FILE *f = std::fopen(volume_path.c_str(), "wb");
    if (!f)
        cb_fatal("cannot open '%s'", volume_path.c_str());
    std::fwrite(vf.bytes().data(), 1, vf.size(), f);
    std::fclose(f);

    std::printf("wrote %zu MiB dump to %s (%.2f%% bits decayed)\n",
                cold.dump.size() >> 20, dump_path.c_str(),
                100.0 * static_cast<double>(cold.bits_flipped) /
                    (static_cast<double>(cold.dump.size()) * 8));
    std::printf("wrote volume container to %s (secret in sector 3)\n",
                volume_path.c_str());
    std::printf("ground truth master keys (for validation):\n"
                "  data : %s\n  tweak: %s\n",
                toHex(mounted->masterKeys().subspan(0, 32)).c_str(),
                toHex(mounted->masterKeys().subspan(32, 32)).c_str());
    return 0;
}

int
cmdAttack(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    // Stream the dump instead of copying it into memory: mmap when
    // possible, buffered pread otherwise. On a multi-GiB capture the
    // old loadRaw() path doubled the peak RSS.
    auto dump = exec::openDumpSource(argv[0], g_dump_backend);
    attack::PipelineParams params;
    if (argc > 1)
        params.search.threads = static_cast<unsigned>(
            std::strtoul(argv[1], nullptr, 10));

    auto report = attack::runColdBootAttack(*dump, params);
    std::printf("mined %zu candidate keys; recovered %zu AES table(s);"
                " %zu XTS pair(s); %.2f MiB/s (%s dump, peak RSS "
                "%llu KiB)\n",
                report.mined_keys.size(), report.recovered.size(),
                report.xts_pairs.size(), report.mib_per_second,
                dump->backendName(),
                static_cast<unsigned long long>(peakRssKib()));
    for (const auto &pair : report.xts_pairs) {
        // coldboot-lint: allow(secret-taint) -- printing recovered keys is this attack tool's output
        std::printf("XTS master keys at dump offset 0x%llx:\n"
                    "  data : %s\n  tweak: %s\n",
                    static_cast<unsigned long long>(
                        pair.table_offset),
                    toHex({pair.data_key.data(), 32}).c_str(),
                    toHex({pair.tweak_key.data(), 32}).c_str());
    }
    std::printf("\n--- stats ---\n%s",
                obs::StatRegistry::global().dumpText().c_str());
    return report.xts_pairs.empty() ? 1 : 0;
}

int
cmdMine(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    auto dump = exec::openDumpSource(argv[0], g_dump_backend);
    size_t top_n =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;

    attack::MinerStats stats;
    auto mined = attack::mineScramblerKeys(*dump, {}, &stats);
    std::printf("scanned %llu blocks, %llu litmus hits, %zu "
                "candidate keys\n",
                static_cast<unsigned long long>(stats.blocks_scanned),
                static_cast<unsigned long long>(stats.litmus_hits),
                mined.size());
    for (size_t i = 0; i < std::min(top_n, mined.size()); ++i) {
        std::printf("#%2zu x%-5zu %s...\n", i, mined[i].occurrences,
                    toHex({mined[i].key.data(), 16}).c_str());
    }
    std::printf("\n--- stats ---\n%s",
                obs::StatRegistry::global().dumpText().c_str());
    return 0;
}

int
cmdDescramble(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    auto dump = exec::openDumpSource(argv[0], g_dump_backend);
    // Same session object the analysis service drives, run to
    // completion in-line - so service descramble results (image
    // bytes, digest, rendering) are byte-identical to this command.
    attack::DescrambleSession session(*dump, argv[1]);
    try {
        session.runToCompletion();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "descramble failed: %s\n", e.what());
        return 1;
    }
    std::fputs(
        attack::renderDescrambleResult(session.result()).c_str(),
        stdout);
    return 0;
}

/**
 * Sacrificial crash-forensics mode: start a real mining sweep on the
 * global pool, give it a moment to leave span/progress breadcrumbs
 * in the flight rings, then die by SIGSEGV (or SIGABRT with "abort")
 * through an actual signal - the way a wild pointer would - so CI
 * can validate the post-mortem dump end to end. Does not return on
 * success: the crash handler writes the dump and the process dies
 * with the original signal.
 */
int
cmdCrashTest(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    int sig = SIGSEGV;
    if (argc > 1 && std::string(argv[1]) == "abort")
        sig = SIGABRT;
    auto dump = exec::openDumpSource(argv[0], g_dump_backend);
    exec::ThreadPool::TaskGroup group(exec::ThreadPool::global());
    group.run([&] {
        obs::ScopedSpan span("crash_test.mine");
        attack::mineScramblerKeys(*dump, {});
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    // The warning both tells an onlooker this death is intentional
    // and (via the log hook) guarantees the crashing thread owns a
    // flight ring with at least one event in it.
    cb_warn("crash-test: raising signal %d mid-run", sig);
    std::raise(sig);
    group.wait();
    return 1; // not reached: the re-raised signal kills the process
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    MemoryImage dump = MemoryImage::loadRaw(argv[0]);
    std::printf("size            : %zu bytes (%zu lines)\n",
                dump.size(), dump.lines());
    std::printf("ones fraction   : %.4f\n", dump.onesFraction());
    std::printf("duplicate pairs : %zu\n", dump.duplicateLinePairs());
    return 0;
}

int
cmdDecrypt(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    std::FILE *f = std::fopen(argv[0], "rb");
    if (!f)
        cb_fatal("cannot open '%s'", argv[0]);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> blob(static_cast<size_t>(size));
    if (std::fread(blob.data(), 1, blob.size(), f) != blob.size())
        cb_fatal("short read from '%s'", argv[0]);
    std::fclose(f);

    auto data_key = fromHex(argv[1]);
    auto tweak_key = fromHex(argv[2]);
    uint64_t sector = std::strtoull(argv[3], nullptr, 10);
    if (data_key.size() != 32 || tweak_key.size() != 32)
        cb_fatal("keys must be 32 bytes of hex each");

    uint64_t off = volume::headerBytes + sector * volume::sectorBytes;
    if (off + volume::sectorBytes > blob.size())
        cb_fatal("sector %llu out of range",
                 static_cast<unsigned long long>(sector));

    crypto::XtsAes xts(data_key, tweak_key);
    std::vector<uint8_t> plain(volume::sectorBytes);
    xts.decryptSector(sector, {&blob[off], volume::sectorBytes},
                      plain);
    std::printf("sector %llu plaintext (first 64 bytes):\n%s\n",
                static_cast<unsigned long long>(sector),
                hexDump({plain.data(), 64}).c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Extract the global observability flags wherever they appear so
    // every command accepts them; what remains is dispatched as
    // before.
    std::string stats_path, trace_path, serve_spec, flight_path;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--serve-obs") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--serve-obs requires an "
                                     "[addr:]port argument\n");
                return usage();
            }
            serve_spec = argv[++i];
            continue;
        }
        if (arg == "--stats-json" || arg == "--trace") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a file argument\n",
                             arg.c_str());
                return usage();
            }
            (arg == "--stats-json" ? stats_path : trace_path) =
                argv[++i];
            continue;
        }
        if (arg == "--threads") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--threads requires a count argument\n");
                return usage();
            }
            unsigned n = exec::parseThreadCount(argv[++i]);
            if (n == 0) {
                std::fprintf(stderr, "--threads: bad count '%s'\n",
                             argv[i]);
                return usage();
            }
            exec::setThreadOverride(n);
            continue;
        }
        if (arg == "--no-mmap") {
            g_dump_backend = exec::DumpBackend::Buffered;
            continue;
        }
        if (arg == "--simd") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--simd requires a backend "
                                     "argument\n");
                return usage();
            }
            auto backend = simd::parseBackend(argv[++i]);
            if (!backend) {
                std::fprintf(stderr,
                             "--simd: unknown backend '%s' (want "
                             "avx2, sse2 or scalar)\n",
                             argv[i]);
                return usage();
            }
            if (!simd::setBackend(*backend)) {
                std::fprintf(stderr,
                             "--simd: backend '%s' is not usable on "
                             "this host\n",
                             argv[i]);
                return 2;
            }
            continue;
        }
        if (arg == "--flight-record") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--flight-record requires a "
                                     "file argument\n");
                return usage();
            }
            flight_path = argv[++i];
            continue;
        }
        if (arg == "--profile-spans") {
            obs::PhaseTracer::setSpanPerfEnabled(true);
            continue;
        }
        args.push_back(argv[i]);
    }

    if (serve_spec.empty()) {
        if (const char *env = std::getenv("COLDBOOT_SERVE_OBS");
            env && *env)
            serve_spec = env;
    }
    if (flight_path.empty()) {
        if (const char *env = std::getenv("COLDBOOT_FLIGHT_RECORD");
            env && *env)
            flight_path = env;
    }

    // Arm the flight recorder before any attack work starts: crash
    // forensics are only useful if the rings were recording from the
    // beginning of the run. Serving telemetry without a dump path
    // still turns recording on so GET /flight has data.
    if (!flight_path.empty())
        obs::FlightRecorder::global().installCrashHandler(
            flight_path);
    else if (!serve_spec.empty())
        obs::FlightRecorder::global().setEnabled(true);

    // SIGINT/SIGTERM flush the requested artifacts before dying, so
    // an interrupted run still leaves its stats/trace behind.
    g_stats_path = stats_path;
    g_trace_path = trace_path;
    std::signal(SIGINT, onTerminateSignal);
    std::signal(SIGTERM, onTerminateSignal);

    // The telemetry plane is entirely optional: nothing below is
    // constructed (no sampler thread, no socket) unless requested.
    std::unique_ptr<obs::TelemetrySampler> sampler;
    std::unique_ptr<obs::ObsHttpServer> server;
    if (!serve_spec.empty()) {
        obs::ServeSpec spec;
        std::string error;
        if (!obs::parseServeSpec(serve_spec, &spec, &error))
            cb_fatal("--serve-obs: %s", error.c_str());
        sampler = std::make_unique<obs::TelemetrySampler>();
        sampler->start();
        obs::ObsHttpServer::Options opts;
        opts.bind = spec;
        opts.sampler = sampler.get();
        server = std::make_unique<obs::ObsHttpServer>(opts);
        if (!server->start(&error))
            cb_fatal("--serve-obs: %s", error.c_str());
        // Announced on stdout (and flushed) so wrappers scraping a
        // `--serve-obs 127.0.0.1:0` child can read the bound port.
        std::printf("serving observability on http://%s:%u/\n",
                    server->address().c_str(), server->port());
        std::fflush(stdout);
    }

    if (args.size() < 2)
        return usage();
    std::string cmd = args[1];
    int sub_argc = static_cast<int>(args.size()) - 2;
    char **sub_argv = args.data() + 2;

    int rc;
    if (cmd == "simulate-victim")
        rc = cmdSimulateVictim(sub_argc, sub_argv);
    else if (cmd == "attack")
        rc = cmdAttack(sub_argc, sub_argv);
    else if (cmd == "mine")
        rc = cmdMine(sub_argc, sub_argv);
    else if (cmd == "descramble")
        rc = cmdDescramble(sub_argc, sub_argv);
    else if (cmd == "info")
        rc = cmdInfo(sub_argc, sub_argv);
    else if (cmd == "decrypt")
        rc = cmdDecrypt(sub_argc, sub_argv);
    else if (cmd == "crash-test")
        rc = cmdCrashTest(sub_argc, sub_argv);
    else
        return usage();

    // Written even when the command "failed" (e.g. no keys found):
    // the stats of an unsuccessful run are exactly what a regression
    // trajectory wants to capture.
    if (!stats_path.empty())
        obs::StatRegistry::global().writeJsonFile(stats_path);
    if (!trace_path.empty())
        obs::PhaseTracer::global().writeTraceFile(trace_path);

    // Test hook: with COLDBOOT_SERVE_OBS_LINGER_MS set, keep serving
    // after the command finished (until the linger elapses or a
    // GET /quit arrives) so an external scraper can read the final
    // state of a short run.
    if (server != nullptr) {
        if (const char *linger_env =
                std::getenv("COLDBOOT_SERVE_OBS_LINGER_MS");
            linger_env && *linger_env) {
            auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(
                    std::strtoul(linger_env, nullptr, 10));
            while (!server->quitRequested() &&
                   std::chrono::steady_clock::now() < deadline) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        }
        server->stop();
    }
    if (sampler != nullptr)
        sampler->stop();
    return rc;
}
