/**
 * @file
 * coldboot-promcheck - validate Prometheus text exposition format
 * (version 0.0.4) read from a file or stdin. Exit 0 when valid,
 * 1 with a "line N: why" diagnostic otherwise.
 *
 * The CI serve-obs smoke leg pipes a live `/metrics` scrape through
 * this so the exposition format is gated without any Python or
 * external prometheus tooling; the validator itself lives in
 * obs/export.hh and is unit-tested in test_telemetry.
 *
 *   curl -s http://127.0.0.1:9464/metrics | coldboot-promcheck
 *   coldboot-promcheck metrics.txt
 */

#include <cstdio>
#include <string>

#include "obs/export.hh"

int
main(int argc, char **argv)
{
    if (argc > 2 ||
        (argc == 2 && std::string(argv[1]) == "--help")) {
        std::fprintf(stderr,
                     "usage: coldboot-promcheck [metrics.txt]\n"
                     "reads stdin when no file is given; exit 0 when "
                     "the input is valid Prometheus text exposition\n");
        return 2;
    }

    std::FILE *in = stdin;
    if (argc == 2) {
        in = std::fopen(argv[1], "rb");
        if (in == nullptr) {
            std::fprintf(stderr, "coldboot-promcheck: cannot open "
                                 "'%s'\n", argv[1]);
            return 2;
        }
    }

    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
        text.append(buf, n);
    if (in != stdin)
        std::fclose(in);

    std::string error;
    if (!coldboot::obs::validatePrometheusText(text, &error)) {
        std::fprintf(stderr, "coldboot-promcheck: %s\n",
                     error.c_str());
        return 1;
    }
    std::printf("coldboot-promcheck: %zu bytes OK\n", text.size());
    return 0;
}
