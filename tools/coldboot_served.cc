/**
 * @file
 * coldboot-served - the long-running multi-client dump-analysis
 * daemon. Clients (coldboot-client, or anything speaking
 * serve/protocol.hh) submit attack / mine / descramble jobs against
 * server-side dump paths; the daemon schedules them as resumable
 * sessions on the shared thread pool with bounded concurrency and an
 * RSS budget, and serves results byte-identical to the one-shot
 * coldboot-tool commands.
 *
 * Typical session:
 *   coldboot-served --port 0 --stats-json stats.json &
 *   # stdout: "serving analysis jobs on 127.0.0.1:PORT"
 *   coldboot-client 127.0.0.1:PORT attack /dumps/capture.img
 *
 * SIGINT/SIGTERM drain gracefully: the listener stops, queued jobs
 * are cancelled, running jobs are cancel-raised at their next
 * cooperative checkpoint, and the stats/trace artifacts are flushed
 * before exit (the same flush-on-signal contract as coldboot-tool).
 * A second signal kills the process immediately.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "exec/thread_pool.hh"
#include "obs/flight.hh"
#include "obs/http.hh"
#include "obs/sampler.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "serve/server.hh"

using namespace coldboot;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: coldboot-served [options]\n"
        "  --port <[addr:]port>  job endpoint (default 127.0.0.1:0;\n"
        "                        port 0 picks an ephemeral port,\n"
        "                        printed on stdout)\n"
        "  --max-jobs <n>        concurrent jobs (default 2)\n"
        "  --rss-budget-mib <n>  streaming-footprint budget across\n"
        "                        running jobs (default 2048)\n"
        "  --job-streaming-mib <n>\n"
        "                        per-job footprint charge cap\n"
        "                        (default 256)\n"
        "  --mmap-threshold-mib <n>\n"
        "                        dumps at/above this stream via\n"
        "                        buffered pread (default 1024)\n"
        "  --handlers <n>        concurrent client connections\n"
        "                        (default 4)\n"
        "  --serve-obs <[addr:]port>\n"
        "                        also serve the observability HTTP\n"
        "                        plane (/metrics /progress ...)\n"
        "  --stats-json <file>   write the stats registry as JSON on\n"
        "                        exit (and on SIGINT/SIGTERM)\n"
        "  --trace <file>        write phase spans as Chrome\n"
        "                        trace_event JSON on exit\n"
        "  --threads <n>         worker threads for parallel scans\n");
    return 2;
}

/** Signal state: 0 = running, else the signal that asked us to die. */
std::atomic<int> g_signal_seen{0};

/**
 * First SIGINT/SIGTERM only raises the flag - the main loop performs
 * the orderly drain, because a scheduler drain is nowhere near
 * async-signal-safe. A second signal means "now": die immediately
 * with the conventional status.
 */
void
onTerminateSignal(int sig)
{
    int expected = 0;
    if (!g_signal_seen.compare_exchange_strong(expected, sig))
        _exit(128 + sig);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    obs::ServeSpec bind; // 127.0.0.1:0
    serve::ServerOptions opts;
    std::string stats_path, trace_path, obs_spec;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an argument\n",
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--port") {
            const char *v = next("--port");
            if (v == nullptr)
                return usage();
            std::string error;
            if (!obs::parseServeSpec(v, &bind, &error)) {
                std::fprintf(stderr, "--port: %s\n", error.c_str());
                return usage();
            }
        } else if (arg == "--max-jobs") {
            const char *v = next("--max-jobs");
            if (v == nullptr)
                return usage();
            opts.scheduler.max_concurrent_jobs =
                std::strtoull(v, nullptr, 10);
        } else if (arg == "--rss-budget-mib") {
            const char *v = next("--rss-budget-mib");
            if (v == nullptr)
                return usage();
            opts.scheduler.rss_budget_bytes =
                std::strtoull(v, nullptr, 10) << 20;
        } else if (arg == "--job-streaming-mib") {
            const char *v = next("--job-streaming-mib");
            if (v == nullptr)
                return usage();
            opts.scheduler.per_job_streaming_bytes =
                std::strtoull(v, nullptr, 10) << 20;
        } else if (arg == "--mmap-threshold-mib") {
            const char *v = next("--mmap-threshold-mib");
            if (v == nullptr)
                return usage();
            opts.scheduler.mmap_threshold_bytes =
                std::strtoull(v, nullptr, 10) << 20;
        } else if (arg == "--handlers") {
            const char *v = next("--handlers");
            if (v == nullptr)
                return usage();
            opts.handler_threads = std::strtoull(v, nullptr, 10);
        } else if (arg == "--serve-obs") {
            const char *v = next("--serve-obs");
            if (v == nullptr)
                return usage();
            obs_spec = v;
        } else if (arg == "--stats-json") {
            const char *v = next("--stats-json");
            if (v == nullptr)
                return usage();
            stats_path = v;
        } else if (arg == "--trace") {
            const char *v = next("--trace");
            if (v == nullptr)
                return usage();
            trace_path = v;
        } else if (arg == "--threads") {
            const char *v = next("--threads");
            if (v == nullptr)
                return usage();
            unsigned n = exec::parseThreadCount(v);
            if (n == 0) {
                std::fprintf(stderr, "--threads: bad count '%s'\n",
                             v);
                return usage();
            }
            exec::setThreadOverride(n);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            return usage();
        }
    }

    std::signal(SIGINT, onTerminateSignal);
    std::signal(SIGTERM, onTerminateSignal);

    opts.bind = bind;
    serve::JobServer server(opts);
    std::string error;
    if (!server.start(&error))
        cb_fatal("coldboot-served: %s", error.c_str());
    // Announced on stdout (and flushed) so wrappers launching
    // `--port 0` can read the bound endpoint.
    std::printf("serving analysis jobs on %s:%u\n",
                server.address().c_str(), server.port());
    std::fflush(stdout);

    // Optional observability plane riding alongside: job progress /
    // ETA shows on /progress, serve.jobs.* on /metrics.
    std::unique_ptr<obs::TelemetrySampler> sampler;
    std::unique_ptr<obs::ObsHttpServer> obs_server;
    if (!obs_spec.empty()) {
        obs::ServeSpec spec;
        if (!obs::parseServeSpec(obs_spec, &spec, &error))
            cb_fatal("--serve-obs: %s", error.c_str());
        sampler = std::make_unique<obs::TelemetrySampler>();
        sampler->start();
        obs::ObsHttpServer::Options obs_opts;
        obs_opts.bind = spec;
        obs_opts.sampler = sampler.get();
        obs_server = std::make_unique<obs::ObsHttpServer>(obs_opts);
        if (!obs_server->start(&error))
            cb_fatal("--serve-obs: %s", error.c_str());
        std::printf("serving observability on http://%s:%u/\n",
                    obs_server->address().c_str(),
                    obs_server->port());
        std::fflush(stdout);
    }

    // Main loop: park until a signal or a protocol Shutdown asks for
    // the drain.
    while (g_signal_seen.load(std::memory_order_acquire) == 0 &&
           !server.shutdownRequested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    int sig = g_signal_seen.load(std::memory_order_acquire);
    cb_inform("coldboot-served: %s; draining",
              sig != 0 ? "termination signal" : "shutdown request");
    server.stop();
    if (obs_server != nullptr)
        obs_server->stop();
    if (sampler != nullptr)
        sampler->stop();

    // Flush artifacts after the drain so they capture the full run -
    // the same exit contract as coldboot-tool's signal path.
    if (!stats_path.empty())
        obs::StatRegistry::global().writeJsonFile(stats_path);
    if (!trace_path.empty())
        obs::PhaseTracer::global().writeTraceFile(trace_path);

    return sig != 0 ? 128 + sig : 0;
}
