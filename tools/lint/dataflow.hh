/**
 * @file
 * Flow-sensitive project-wide analyses over the call graph.
 *
 * Three passes, each backing one rule (see rules.hh for the catalog
 * text):
 *
 *   secret-taint: seeds at key material (locals/params of
 *   secretTypeNames() types and identifiers matching looksSecret()),
 *   closes over intra-function assignment/copy edges, then follows
 *   call arguments through an inter-procedural sink-reachability
 *   fixpoint (an IFDS-style param-summary: "does param k of f reach
 *   a sink?"). A finding is reported at the origin - where the
 *   secret enters the flow - and carries the full hop-by-hop path in
 *   Finding::flow for SARIF code flows.
 *
 *   transitive-determinism: the bodies handed to parallelForChunks /
 *   parallelMapReduceChunks must stay deterministic (DESIGN.md 9).
 *   The token rule no-wallclock-in-sim catches direct uses; this
 *   pass walks the call graph from each parallel-region lambda and
 *   flags wall-clock / OS-entropy uses in transitively-called
 *   functions, which a per-file scan cannot see.
 *
 *   wipe-coverage: a struct owning key-named byte storage
 *   (vector/array/string members whose name looksSecret()) must
 *   either wipe in its destructor (secureWipe()/wipe(), directly or
 *   one call away, in-class or out-of-line) or hold the bytes in a
 *   self-wiping type (SecureBuffer).
 *
 * All resolution is by simple name and deliberately
 * over-approximate; precision comes from suppressions, not from a
 * type checker this linter does not have.
 */

#ifndef COLDBOOT_TOOLS_LINT_DATAFLOW_HH
#define COLDBOOT_TOOLS_LINT_DATAFLOW_HH

#include <vector>

#include "lint/parse.hh"
#include "lint/rules.hh"

namespace coldboot::lint
{

/**
 * Run the three call-graph passes over every parsed TU and return
 * their findings (unsorted, not yet suppression-filtered - the
 * engine applies per-file config and inline suppressions).
 */
std::vector<Finding> analyzeProject(
    const std::vector<FileSummary> &summaries);

} // namespace coldboot::lint

#endif // COLDBOOT_TOOLS_LINT_DATAFLOW_HH
