/**
 * @file
 * Incremental per-file cache for coldboot-lint.
 *
 * Parsing and rule-running dominate a tree lint; the project-wide
 * graph analysis over already-parsed summaries is cheap. So the
 * cache stores, per source file, everything the engine derives from
 * that file alone: its token-rule findings (post-suppression), its
 * suppression comments, and its parsed FileSummary. On a warm run
 * the engine loads those and only re-runs the cross-TU analysis.
 *
 * Invalidation is by content: the cache key is the FNV-1a hash of
 * the file bytes plus a "ruleset hash" covering the lint version,
 * the serialization format version, and the per-file set of
 * config-disabled rules - any of those changing means the stored
 * findings could be stale, so the entry misses and the file is
 * re-linted. Entries are one file each, named by the hash of the
 * repo-relative path, written atomically (tmp + rename) so an
 * interrupted run never leaves a torn entry.
 */

#ifndef COLDBOOT_TOOLS_LINT_CACHE_HH
#define COLDBOOT_TOOLS_LINT_CACHE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/parse.hh"
#include "lint/rules.hh"

namespace coldboot::lint
{

/** A parsed, valid `coldboot-lint: allow(...)` comment. */
struct Suppression
{
    int line = 0; ///< line the comment starts on
    std::string rule;
    /** Comment is alone on its line (may waive the next line). */
    bool standalone = false;
};

/** Everything the engine derives from one file in isolation. */
struct FileArtifacts
{
    /** Token-rule findings, already suppression-filtered. */
    std::vector<Finding> findings;
    std::vector<Suppression> suppressions;
    FileSummary summary;
};

/** FNV-1a 64-bit. */
uint64_t fnv1a64(std::string_view data,
                 uint64_t seed = 1469598103934665603ULL);

/**
 * Load the entry for @p rel_path if it exists and both hashes
 * match. Returns false on miss (absent, stale, or torn).
 */
bool cacheLoad(const std::string &cache_dir,
               const std::string &rel_path, uint64_t content_hash,
               uint64_t ruleset_hash, FileArtifacts &out);

/**
 * Store the entry for @p rel_path (creates @p cache_dir if needed).
 * Best-effort: returns false on I/O failure, which only costs the
 * next run a re-lint.
 */
bool cacheStore(const std::string &cache_dir,
                const std::string &rel_path, uint64_t content_hash,
                uint64_t ruleset_hash,
                const FileArtifacts &artifacts);

} // namespace coldboot::lint

#endif // COLDBOOT_TOOLS_LINT_CACHE_HH
