#include "lint/lexer.hh"

#include <cctype>

namespace coldboot::lint
{

namespace
{

/** Cursor over the source with line/column bookkeeping. */
struct Cursor
{
    std::string_view src;
    size_t pos = 0;
    int line = 1;
    int col = 1;

    bool done() const { return pos >= src.size(); }
    char peek(size_t ahead = 0) const
    {
        return pos + ahead < src.size() ? src[pos + ahead] : '\0';
    }

    char
    advance()
    {
        char c = src[pos++];
        if (c == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        return c;
    }
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Consume a quoted literal body; handles \-escapes, stops at EOL. */
std::string
consumeQuoted(Cursor &cur, char quote)
{
    std::string body;
    while (!cur.done()) {
        char c = cur.peek();
        if (c == '\\' && cur.pos + 1 < cur.src.size()) {
            body.push_back(cur.advance());
            body.push_back(cur.advance());
            continue;
        }
        if (c == quote) {
            cur.advance();
            break;
        }
        if (c == '\n')
            break; // unterminated; tolerate and resync
        body.push_back(cur.advance());
    }
    return body;
}

/** Consume R"delim( ... )delim" after the opening quote. */
std::string
consumeRawString(Cursor &cur)
{
    // cur sits just past the '"'. Read the delimiter.
    std::string delim;
    while (!cur.done() && cur.peek() != '(' && cur.peek() != '\n' &&
           delim.size() < 16)
        delim.push_back(cur.advance());
    if (cur.peek() == '(')
        cur.advance();
    std::string closer = ")" + delim + "\"";
    std::string body;
    while (!cur.done()) {
        if (cur.src.compare(cur.pos, closer.size(), closer) == 0) {
            for (size_t i = 0; i < closer.size(); ++i)
                cur.advance();
            break;
        }
        body.push_back(cur.advance());
    }
    return body;
}

/** String-literal prefixes whose next char may be a quote. */
bool
isStringPrefix(const std::string &ident, bool &raw)
{
    raw = ident == "R" || ident == "u8R" || ident == "uR" ||
          ident == "LR" || ident == "UR";
    return raw || ident == "u8" || ident == "u" || ident == "L" ||
           ident == "U";
}

} // anonymous namespace

LexResult
lex(std::string_view source)
{
    LexResult out;
    Cursor cur{source};
    bool at_line_start = true; // only whitespace seen on this line

    while (!cur.done()) {
        char c = cur.peek();
        int tok_line = cur.line;
        int tok_col = cur.col;

        // Whitespace.
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
            c == '\f' || c == '\v') {
            if (c == '\n')
                at_line_start = true;
            cur.advance();
            continue;
        }

        // Comments.
        if (c == '/' && cur.peek(1) == '/') {
            cur.advance();
            cur.advance();
            std::string body;
            while (!cur.done() && cur.peek() != '\n')
                body.push_back(cur.advance());
            out.comments.push_back(
                {body, tok_line, tok_col, at_line_start});
            continue;
        }
        if (c == '/' && cur.peek(1) == '*') {
            cur.advance();
            cur.advance();
            std::string body;
            while (!cur.done()) {
                if (cur.peek() == '*' && cur.peek(1) == '/') {
                    cur.advance();
                    cur.advance();
                    break;
                }
                body.push_back(cur.advance());
            }
            out.comments.push_back(
                {body, tok_line, tok_col, at_line_start});
            continue;
        }

        // Preprocessor directive: '#' first on the line; join
        // backslash continuations into one token.
        if (c == '#' && at_line_start) {
            std::string text;
            while (!cur.done()) {
                char d = cur.peek();
                if (d == '\n') {
                    if (!text.empty() && text.back() == '\\') {
                        text.pop_back();
                        text.push_back(' ');
                        cur.advance();
                        continue;
                    }
                    break;
                }
                if (d == '/' && cur.peek(1) == '/')
                    break; // trailing comment; next loop collects it
                text.push_back(cur.advance());
            }
            out.tokens.push_back(
                {TokKind::Preprocessor, text, tok_line, tok_col});
            at_line_start = false;
            continue;
        }
        at_line_start = false;

        // Identifiers (and string-literal prefixes).
        if (identStart(c)) {
            std::string ident;
            while (!cur.done() && identCont(cur.peek()))
                ident.push_back(cur.advance());
            bool raw = false;
            if (cur.peek() == '"' && isStringPrefix(ident, raw)) {
                cur.advance(); // opening quote
                std::string body = raw ? consumeRawString(cur)
                                       : consumeQuoted(cur, '"');
                out.tokens.push_back(
                    {TokKind::String, body, tok_line, tok_col});
                continue;
            }
            if (cur.peek() == '\'' &&
                (ident == "u8" || ident == "u" || ident == "L" ||
                 ident == "U")) {
                cur.advance();
                std::string body = consumeQuoted(cur, '\'');
                out.tokens.push_back(
                    {TokKind::CharLit, body, tok_line, tok_col});
                continue;
            }
            out.tokens.push_back(
                {TokKind::Identifier, ident, tok_line, tok_col});
            continue;
        }

        // Numbers (digit separators, hex, exponents).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
            std::string num;
            while (!cur.done()) {
                char d = cur.peek();
                if (identCont(d) || d == '.' || d == '\'') {
                    num.push_back(cur.advance());
                    if ((d == 'e' || d == 'E' || d == 'p' ||
                         d == 'P') &&
                        (cur.peek() == '+' || cur.peek() == '-'))
                        num.push_back(cur.advance());
                    continue;
                }
                break;
            }
            out.tokens.push_back(
                {TokKind::Number, num, tok_line, tok_col});
            continue;
        }

        // Plain string and char literals.
        if (c == '"') {
            cur.advance();
            std::string body = consumeQuoted(cur, '"');
            out.tokens.push_back(
                {TokKind::String, body, tok_line, tok_col});
            continue;
        }
        if (c == '\'') {
            cur.advance();
            std::string body = consumeQuoted(cur, '\'');
            out.tokens.push_back(
                {TokKind::CharLit, body, tok_line, tok_col});
            continue;
        }

        // Everything else: one punctuation character per token.
        cur.advance();
        out.tokens.push_back(
            {TokKind::Punct, std::string(1, c), tok_line, tok_col});
    }
    return out;
}

} // namespace coldboot::lint
