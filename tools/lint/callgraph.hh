/**
 * @file
 * Project-wide call graph over per-TU FileSummary records.
 *
 * Nodes are function definitions (including methods and lambdas);
 * edges come from call sites, resolved by simple name. Name-based
 * resolution is deliberately conservative: a call to `mine` links to
 * every function named `mine` in the project, which over-approximates
 * reachability (fine for a linter - it can add findings that a
 * suppression then waives, but it cannot silently miss a path
 * because overload resolution was too clever).
 */

#ifndef COLDBOOT_TOOLS_LINT_CALLGRAPH_HH
#define COLDBOOT_TOOLS_LINT_CALLGRAPH_HH

#include <map>
#include <string>
#include <vector>

#include "lint/parse.hh"

namespace coldboot::lint
{

/** One function in the project, with its defining file. */
struct GraphNode
{
    const FunctionDef *fn = nullptr;
    const FileSummary *file = nullptr;
    /** Index of this node's file in the summaries vector. */
    size_t file_index = 0;
    /** Index of fn within file->functions. */
    size_t fn_index = 0;
};

/** Symbol index + call graph across every parsed TU. */
class CallGraph
{
  public:
    /**
     * Build from parsed summaries. The summaries must outlive the
     * graph (nodes point into them).
     */
    explicit CallGraph(const std::vector<FileSummary> &summaries);

    const std::vector<GraphNode> &
    nodes() const
    {
        return nodes_;
    }

    /**
     * Node ids whose function matches @p callee by simple name (or
     * by qual for lambdas, whose qual is unique). Empty when the
     * callee is external (std::, libc) or a local variable.
     */
    const std::vector<size_t> &resolve(const std::string &callee) const;

    /**
     * Node id of the lambda at @p file_index with function index
     * @p fn_in_file, or npos. Used to map CallSite::lambda_args.
     */
    size_t lambdaNode(size_t file_index, size_t fn_in_file) const;

    static constexpr size_t npos = static_cast<size_t>(-1);

  private:
    std::vector<GraphNode> nodes_;
    std::map<std::string, std::vector<size_t>> by_name_;
    /** (file_index << 32 | fn_index) -> node id. */
    std::map<std::pair<size_t, size_t>, size_t> by_position_;
    std::vector<size_t> empty_;
};

} // namespace coldboot::lint

#endif // COLDBOOT_TOOLS_LINT_CALLGRAPH_HH
