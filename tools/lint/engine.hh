/**
 * @file
 * coldboot-lint driver: tree walking, per-directory configuration,
 * inline suppressions, the cross-TU call-graph analysis
 * (dataflow.hh), the incremental cache (cache.hh), and the text /
 * JSON / SARIF 2.1.0 emitters.
 *
 * Configuration: a `.coldboot-lint` file in any directory applies to
 * that directory and everything below it. Lines (comments start
 * with '#'):
 *
 *     disable <rule>                  # whole subtree
 *     disable <rule> <file-substring> # only matching file names
 *
 * Suppressions: a finding is waived by a comment on the same line or
 * the line directly above:
 *
 *     // coldboot-lint: allow(<rule>) -- <justification>
 *
 * The justification is required; a suppression without one (or
 * naming an unknown rule) is itself reported as `bad-suppression`.
 */

#ifndef COLDBOOT_TOOLS_LINT_ENGINE_HH
#define COLDBOOT_TOOLS_LINT_ENGINE_HH

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hh"

namespace coldboot::lint
{

/** Tool version, reported by --version and in JSON/SARIF output. */
const char *lintVersion();

/** Tree-walk options. */
struct LintOptions
{
    /** Directory the scan roots at (paths are relative to it). */
    std::string root = ".";
    /** Subtrees (or single files) to scan, relative to root. */
    std::vector<std::string> paths = {"src", "bench", "tests",
                                      "tools"};
    /**
     * Directory for the incremental per-file cache (see cache.hh).
     * Empty disables caching; every file is lexed, linted, and
     * parsed from scratch.
     */
    std::string cache_dir;
};

/** Scan outcome. */
struct LintResult
{
    std::vector<Finding> findings;
    size_t files_scanned = 0;
    /** Files whose artifacts came from the incremental cache. */
    size_t cache_hits = 0;
    /** Files that had to be (re-)lexed, linted, and parsed. */
    size_t cache_misses = 0;
    /** Wall time of the cross-TU call-graph analysis alone. */
    long analysis_ms = 0;
    /** Wall time of the whole tree lint. */
    long elapsed_ms = 0;
    /** Set when the scan itself failed (missing root, bad config). */
    bool internal_error = false;
    std::string error_message;
};

/**
 * Lint one in-memory source with the token rules only (the
 * call-graph passes need the whole project and run in lintTree).
 * @p display_path is used in findings and for header-only rules;
 * @p disabled comes from per-directory config. Applies suppression
 * comments (valid ones waive findings; malformed ones become
 * bad-suppression findings).
 */
std::vector<Finding> lintSource(
    const std::string &display_path, std::string_view content,
    const std::set<std::string> &disabled = {});

/**
 * Walk the tree, lint every C++ source under options.paths, then
 * run the cross-TU call-graph passes (secret-taint,
 * transitive-determinism, wipe-coverage) over the parsed summaries.
 * Per-directory config and inline suppressions apply to the
 * call-graph findings exactly as to token findings, keyed on the
 * finding's primary file and line.
 */
LintResult lintTree(const LintOptions &options);

/** One finding per line: `file:line:col: [rule] message`. */
std::string emitText(const LintResult &result);

/** Machine-readable JSON (tool, version, findings, files_scanned). */
std::string emitJson(const LintResult &result);

/** SARIF 2.1.0 for CI code-scanning annotation. */
std::string emitSarif(const LintResult &result);

} // namespace coldboot::lint

#endif // COLDBOOT_TOOLS_LINT_ENGINE_HH
