/**
 * @file
 * Declaration/definition extractor for coldboot-lint's call-graph
 * passes.
 *
 * This is not a C++ front end. It walks the token stream from
 * lexer.hh with brace/paren matching and pattern heuristics and
 * pulls out exactly what the dataflow passes need per translation
 * unit: function definitions (including class methods, out-of-line
 * definitions and lambdas) with their parameters, the call sites
 * inside each body with per-argument identifier sets, assignment
 * edges for local taint propagation, locals of key-material types,
 * direct uses of banned nondeterminism, and struct/class definitions
 * with their data members and destructor-wipe status.
 *
 * The extraction is deliberately conservative in both directions a
 * linter can afford: an unparseable construct is skipped (no
 * findings invented from garbage), and identifier attribution to
 * call arguments over-approximates (an identifier inside nested
 * calls taints every enclosing argument list), which can only add
 * taint, never lose it.
 */

#ifndef COLDBOOT_TOOLS_LINT_PARSE_HH
#define COLDBOOT_TOOLS_LINT_PARSE_HH

#include <string>
#include <vector>

#include "lint/lexer.hh"

namespace coldboot::lint
{

/** One parameter or data member: name plus the spelled-out type. */
struct Param
{
    std::string name;
    std::string type; ///< source tokens joined with spaces
    int line = 0;     ///< declaration line (0 when unknown)
};

/** One call site inside a function body. */
struct CallSite
{
    std::string callee; ///< last identifier of the callee spelling
    int line = 0;
    int col = 0;
    /**
     * Callee is a member access (`obj.write(...)` / `mc->write()`).
     * The taint pass does not treat member calls as output sinks -
     * `Machine::writePhys` writing simulated DRAM is not the POSIX
     * write(2) - though they still resolve into the call graph.
     */
    bool member = false;
    /**
     * Identifiers appearing in each argument position. `x.size()`
     * style accessor results are excluded (counts are not secret);
     * identifiers inside nested calls are attributed to every
     * enclosing argument (conservative).
     */
    std::vector<std::vector<std::string>> args;
    /**
     * Indices (into FileSummary::functions) of lambdas defined
     * directly in this call's argument list, e.g. the body handed to
     * parallelForChunks.
     */
    std::vector<int> lambda_args;
};

/** One assignment edge `lhs = ...rhs...` (includes compound ops). */
struct Assign
{
    std::string lhs;
    std::vector<std::string> rhs;
    int line = 0;
};

/** A direct use of banned nondeterminism inside a body. */
struct NondetUse
{
    std::string what; ///< e.g. "time" or "random_device"
    int line = 0;
    int col = 0;
};

/** One function (or method, or lambda) definition. */
// coldboot-lint: allow(wipe-coverage) -- linter metadata about secrets, holds names not key bytes
struct FunctionDef
{
    std::string name; ///< simple name ("mineKeys", "operator()")
    std::string qual; ///< display name ("KeyMiner::mineKeys")
    int line = 0;
    int col = 0;
    bool is_lambda = false;
    std::vector<Param> params;
    std::vector<CallSite> calls;
    std::vector<Assign> assigns;
    /** Locals declared with a key-material type (secretTypeNames). */
    std::vector<Param> secret_locals;
    std::vector<NondetUse> nondet;
};

/** One struct/class definition with its data members. */
struct StructDef
{
    std::string name;
    int line = 0;
    int col = 0;
    std::vector<Param> members; ///< data members only, not methods
    bool has_dtor = false;
    /** Destructor body calls secureWipe() or wipe(). */
    bool dtor_wipes = false;
};

/** Everything extracted from one translation unit. */
struct FileSummary
{
    std::string path;
    std::vector<FunctionDef> functions;
    std::vector<StructDef> structs;
};

/** Extract the summary for one lexed file. Never fails. */
FileSummary parseSummary(const std::string &path,
                         const LexResult &lex);

} // namespace coldboot::lint

#endif // COLDBOOT_TOOLS_LINT_PARSE_HH
