#include "lint/engine.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "lint/cache.hh"
#include "lint/dataflow.hh"
#include "lint/parse.hh"
#include "obs/json.hh"

namespace coldboot::lint
{

namespace fs = std::filesystem;

namespace
{

constexpr const char *version = "1.0.0";
constexpr const char *configName = ".coldboot-lint";

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
           ext == ".hh" || ext == ".h" || ext == ".hpp";
}

std::string
trimmed(std::string_view sv)
{
    size_t b = sv.find_first_not_of(" \t\r");
    if (b == std::string_view::npos)
        return {};
    size_t e = sv.find_last_not_of(" \t\r");
    return std::string(sv.substr(b, e - b + 1));
}

/** One `disable` directive from a .coldboot-lint file. */
struct ConfigEntry
{
    std::string rule;
    std::string file_substring; ///< empty = whole subtree
};

/**
 * Parse a .coldboot-lint file. Returns false (with @p error set) on
 * a malformed line or unknown rule - a broken config should fail the
 * run loudly, not silently change what gets linted.
 */
bool
parseConfig(const std::string &path, std::vector<ConfigEntry> &out,
            std::string &error)
{
    std::ifstream in(path);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string t = trimmed(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::istringstream words(t);
        std::string verb, rule, substring;
        words >> verb >> rule >> substring;
        if (verb != "disable" || rule.empty()) {
            error = path + ":" + std::to_string(lineno) +
                    ": expected 'disable <rule> [file-substring]'";
            return false;
        }
        if (!isKnownRule(rule)) {
            error = path + ":" + std::to_string(lineno) +
                    ": unknown rule '" + rule + "'";
            return false;
        }
        out.push_back({rule, substring});
    }
    return true;
}

/** Loads and caches per-directory configs along the walk. */
class ConfigStack
{
  public:
    /**
     * Rules disabled for @p file, from every .coldboot-lint between
     * @p root and the file's directory. Returns false on a config
     * parse error (reported via @p error).
     */
    bool
    disabledFor(const fs::path &root, const fs::path &file,
                std::set<std::string> &disabled, std::string &error)
    {
        std::vector<fs::path> dirs;
        fs::path dir = file.parent_path();
        // Collect root..dir; stop at root (file is under root).
        while (true) {
            dirs.push_back(dir);
            if (dir == root || !dir.has_parent_path() ||
                dir == dir.parent_path())
                break;
            dir = dir.parent_path();
        }
        const std::string fname = file.filename().string();
        for (auto it = dirs.rbegin(); it != dirs.rend(); ++it) {
            const auto *entries = load(*it, error);
            if (entries == nullptr)
                return false;
            for (const auto &e : *entries) {
                if (e.file_substring.empty() ||
                    fname.find(e.file_substring) != std::string::npos)
                    disabled.insert(e.rule);
            }
        }
        return true;
    }

  private:
    const std::vector<ConfigEntry> *
    load(const fs::path &dir, std::string &error)
    {
        auto it = cache.find(dir.string());
        if (it == cache.end()) {
            Entry entry;
            fs::path cfg = dir / configName;
            std::error_code ec;
            if (fs::exists(cfg, ec))
                entry.ok = parseConfig(cfg.string(), entry.entries,
                                       entry.error);
            it = cache.emplace(dir.string(), std::move(entry)).first;
        }
        if (!it->second.ok) {
            error = it->second.error;
            return nullptr;
        }
        return &it->second.entries;
    }

    struct Entry
    {
        bool ok = true;
        std::string error;
        std::vector<ConfigEntry> entries;
    };
    std::map<std::string, Entry> cache;
};

/**
 * Scan comments for `coldboot-lint:` markers. Valid suppressions go
 * to @p suppressions; malformed ones become bad-suppression
 * findings.
 */
void
collectSuppressions(const std::string &path,
                    const std::vector<Comment> &comments,
                    std::vector<Suppression> &suppressions,
                    std::vector<Finding> &findings)
{
    for (const auto &c : comments) {
        // The marker must open the comment - prose that merely
        // mentions the syntax mid-sentence is not a suppression.
        const std::string text = trimmed(c.text);
        if (text.compare(0, 14, "coldboot-lint:") != 0)
            continue;
        std::string rest = trimmed(text.substr(14));
        auto bad = [&](const std::string &why) {
            findings.push_back({"bad-suppression", path, c.line, 1,
                                why + " (expected 'coldboot-lint: "
                                "allow(<rule>) -- <why>')",
                 {}});
        };
        if (rest.compare(0, 6, "allow(") != 0) {
            bad("suppression must use allow(<rule>)");
            continue;
        }
        size_t close = rest.find(')', 6);
        if (close == std::string::npos) {
            bad("unterminated allow(");
            continue;
        }
        std::string rule = trimmed(rest.substr(6, close - 6));
        if (!isKnownRule(rule)) {
            bad("unknown rule '" + rule + "'");
            continue;
        }
        std::string tail = trimmed(rest.substr(close + 1));
        if (tail.compare(0, 2, "--") != 0 ||
            trimmed(tail.substr(2)).empty()) {
            bad("missing justification after '--'");
            continue;
        }
        suppressions.push_back({c.line, rule, c.standalone});
    }
}

/**
 * Whether a finding at line @p f_line is waived by @p s. A trailing
 * suppression (comment after code) covers only its own line; a
 * standalone one covers the strictly-adjacent next line - never a
 * line further down, even across blanks.
 */
bool
suppresses(const Suppression &s, const std::string &rule, int f_line)
{
    if (s.rule != rule)
        return false;
    if (f_line == s.line)
        return true;
    return s.standalone && f_line == s.line + 1;
}

/**
 * Everything the engine derives from one file in isolation:
 * token-rule findings (suppression-filtered), suppressions, and the
 * parsed summary for the call-graph passes. This is the unit the
 * incremental cache stores.
 */
FileArtifacts
computeArtifacts(const std::string &display_path,
                 std::string_view content,
                 const std::set<std::string> &disabled)
{
    FileArtifacts art;
    LexResult lexed = lex(content);
    std::vector<Finding> findings =
        runRules(display_path, lexed, disabled);

    std::vector<Finding> meta;
    collectSuppressions(display_path, lexed.comments,
                        art.suppressions, meta);

    auto waived = [&](const Finding &f) {
        for (const auto &s : art.suppressions)
            if (suppresses(s, f.rule, f.line))
                return true;
        return false;
    };
    findings.erase(
        std::remove_if(findings.begin(), findings.end(), waived),
        findings.end());

    if (disabled.find("bad-suppression") == disabled.end())
        findings.insert(findings.end(), meta.begin(), meta.end());

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.col != b.col)
                      return a.col < b.col;
                  return a.rule < b.rule;
              });
    art.findings = std::move(findings);
    art.summary = parseSummary(display_path, lexed);
    return art;
}

/** Cache key half covering everything except the file content. */
uint64_t
rulesetHash(const std::set<std::string> &disabled)
{
    std::string key = version;
    for (const auto &rule : disabled) { // std::set: sorted, stable
        key += '\0';
        key += rule;
    }
    return fnv1a64(key);
}

} // anonymous namespace

const char *
lintVersion()
{
    return version;
}

std::vector<Finding>
lintSource(const std::string &display_path, std::string_view content,
           const std::set<std::string> &disabled)
{
    return computeArtifacts(display_path, content, disabled)
        .findings;
}

LintResult
lintTree(const LintOptions &options)
{
    LintResult result;
    fs::path root(options.root);
    std::error_code ec;
    root = fs::absolute(root, ec);
    if (ec || !fs::is_directory(root)) {
        result.internal_error = true;
        result.error_message =
            "root is not a directory: " + options.root;
        return result;
    }

    ConfigStack configs;
    std::vector<fs::path> files;
    for (const auto &rel : options.paths) {
        fs::path sub = root / rel;
        if (fs::is_regular_file(sub, ec)) {
            files.push_back(sub);
            continue;
        }
        if (!fs::is_directory(sub, ec)) {
            result.internal_error = true;
            result.error_message =
                "no such file or directory: " + sub.string();
            return result;
        }
        for (fs::recursive_directory_iterator it(sub, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (it->is_regular_file(ec) && isSourceFile(it->path()))
                files.push_back(it->path());
        }
        if (ec) {
            result.internal_error = true;
            result.error_message = "walking " + sub.string() + ": " +
                                   ec.message();
            return result;
        }
    }
    std::sort(files.begin(), files.end());

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<FileArtifacts> artifacts;
    std::vector<std::set<std::string>> disabled_per_file;
    artifacts.reserve(files.size());
    disabled_per_file.reserve(files.size());

    for (const auto &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            result.internal_error = true;
            result.error_message = "cannot read " + file.string();
            return result;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string content = buf.str();

        std::set<std::string> disabled;
        std::string cfg_error;
        if (!configs.disabledFor(root, file, disabled, cfg_error)) {
            result.internal_error = true;
            result.error_message = cfg_error;
            return result;
        }

        // Report repo-relative paths with forward slashes (SARIF
        // wants URIs; text output wants clickable paths).
        std::string rel =
            fs::relative(file, root, ec).generic_string();
        if (ec)
            rel = file.generic_string();

        FileArtifacts art;
        bool cached = false;
        const uint64_t chash = fnv1a64(content);
        const uint64_t rhash = rulesetHash(disabled);
        if (!options.cache_dir.empty())
            cached = cacheLoad(options.cache_dir, rel, chash, rhash,
                               art);
        if (cached) {
            ++result.cache_hits;
        } else {
            ++result.cache_misses;
            art = computeArtifacts(rel, content, disabled);
            if (!options.cache_dir.empty())
                cacheStore(options.cache_dir, rel, chash, rhash,
                           art);
        }
        result.findings.insert(result.findings.end(),
                               art.findings.begin(),
                               art.findings.end());
        artifacts.push_back(std::move(art));
        disabled_per_file.push_back(std::move(disabled));
        ++result.files_scanned;
    }

    // Cross-TU call-graph passes over the parsed summaries. Their
    // findings honor per-directory config and inline suppressions
    // through the finding's primary file, same as token findings.
    const auto a0 = std::chrono::steady_clock::now();
    std::vector<FileSummary> summaries;
    summaries.reserve(artifacts.size());
    for (auto &art : artifacts)
        summaries.push_back(std::move(art.summary));
    std::map<std::string, size_t> file_index;
    for (size_t i = 0; i < summaries.size(); ++i)
        file_index[summaries[i].path] = i;

    for (auto &f : analyzeProject(summaries)) {
        auto it = file_index.find(f.file);
        if (it != file_index.end()) {
            const auto &disabled = disabled_per_file[it->second];
            if (disabled.count(f.rule) != 0)
                continue;
            bool waived = false;
            for (const auto &s :
                 artifacts[it->second].suppressions)
                if (suppresses(s, f.rule, f.line)) {
                    waived = true;
                    break;
                }
            if (waived)
                continue;
        }
        result.findings.push_back(std::move(f));
    }
    const auto t1 = std::chrono::steady_clock::now();
    using std::chrono::duration_cast;
    using std::chrono::milliseconds;
    result.analysis_ms =
        duration_cast<milliseconds>(t1 - a0).count();
    result.elapsed_ms = duration_cast<milliseconds>(t1 - t0).count();

    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.col < b.col;
              });
    return result;
}

std::string
emitText(const LintResult &result)
{
    std::ostringstream out;
    for (const auto &f : result.findings)
        out << f.file << ":" << f.line << ":" << f.col << ": ["
            << f.rule << "] " << f.message << "\n";
    out << result.files_scanned << " file(s) scanned, "
        << result.findings.size() << " finding(s)\n";
    return out.str();
}

std::string
emitJson(const LintResult &result)
{
    namespace json = obs::json;
    std::ostringstream out;
    out << "{\"tool\":\"coldboot-lint\",\"version\":\""
        << json::escape(version) << "\",\"files_scanned\":"
        << result.files_scanned
        << ",\"cache_hits\":" << result.cache_hits
        << ",\"cache_misses\":" << result.cache_misses
        << ",\"analysis_ms\":" << result.analysis_ms
        << ",\"elapsed_ms\":" << result.elapsed_ms
        << ",\"findings\":[";
    bool first = true;
    for (const auto &f : result.findings) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"rule\":\"" << json::escape(f.rule)
            << "\",\"file\":\"" << json::escape(f.file)
            << "\",\"line\":" << f.line << ",\"col\":" << f.col
            << ",\"message\":\"" << json::escape(f.message) << "\"";
        if (!f.flow.empty()) {
            out << ",\"flow\":[";
            bool ffirst = true;
            for (const auto &step : f.flow) {
                if (!ffirst)
                    out << ",";
                ffirst = false;
                out << "{\"file\":\"" << json::escape(step.file)
                    << "\",\"line\":" << step.line
                    << ",\"col\":" << step.col << ",\"note\":\""
                    << json::escape(step.note) << "\"}";
            }
            out << "]";
        }
        out << "}";
    }
    out << "]}";
    return out.str();
}

std::string
emitSarif(const LintResult &result)
{
    namespace json = obs::json;
    std::ostringstream out;
    out << "{\"$schema\":\"https://raw.githubusercontent.com/"
           "oasis-tcs/sarif-spec/master/Schemata/"
           "sarif-schema-2.1.0.json\","
        << "\"version\":\"2.1.0\",\"runs\":[{"
        << "\"tool\":{\"driver\":{\"name\":\"coldboot-lint\","
        << "\"version\":\"" << json::escape(version) << "\","
        << "\"informationUri\":"
           "\"https://example.invalid/coldboot-lint\","
        << "\"rules\":[";
    bool first = true;
    for (const auto &r : ruleCatalog()) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"id\":\"" << json::escape(r.id)
            << "\",\"shortDescription\":{\"text\":\""
            << json::escape(r.description)
            << "\"},\"fullDescription\":{\"text\":\""
            << json::escape(r.rationale)
            << "\"},\"help\":{\"text\":\""
            << json::escape(std::string("Violation:\n") +
                            r.example_bad + "\n\nFix:\n" +
                            r.example_fix)
            << "\"}}";
    }
    out << "]}},\"results\":[";
    first = true;
    for (const auto &f : result.findings) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"ruleId\":\"" << json::escape(f.rule)
            << "\",\"level\":\"error\",\"message\":{\"text\":\""
            << json::escape(f.message)
            << "\"},\"locations\":[{\"physicalLocation\":{"
            << "\"artifactLocation\":{\"uri\":\""
            << json::escape(f.file) << "\"},\"region\":{"
            << "\"startLine\":" << f.line
            << ",\"startColumn\":" << f.col << "}}}]";
        if (!f.flow.empty()) {
            // Inter-procedural path as one codeFlow/threadFlow,
            // source first, sink last (SARIF 3.36-3.38).
            out << ",\"codeFlows\":[{\"threadFlows\":[{"
                   "\"locations\":[";
            bool sfirst = true;
            for (const auto &step : f.flow) {
                if (!sfirst)
                    out << ",";
                sfirst = false;
                out << "{\"location\":{\"physicalLocation\":{"
                    << "\"artifactLocation\":{\"uri\":\""
                    << json::escape(step.file)
                    << "\"},\"region\":{\"startLine\":"
                    << step.line << ",\"startColumn\":"
                    << (step.col > 0 ? step.col : 1)
                    << "}},\"message\":{\"text\":\""
                    << json::escape(step.note) << "\"}}}";
            }
            out << "]}]}]";
        }
        out << "}";
    }
    out << "]}]}";
    return out.str();
}

} // namespace coldboot::lint
