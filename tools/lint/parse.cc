#include "lint/parse.hh"

#include <set>

#include "lint/rules.hh"

namespace coldboot::lint
{

namespace
{

constexpr size_t npos = static_cast<size_t>(-1);

/** Keywords that look like calls or names but never are. */
bool
isControlWord(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",        "for",
        "while",     "switch",
        "catch",     "return",
        "sizeof",    "alignof",
        "alignas",   "decltype",
        "new",       "delete",
        "throw",     "static_assert",
        "defined",   "case",
        "goto",      "do",
        "else",      "co_await",
        "co_return", "co_yield",
        "static_cast",      "dynamic_cast",
        "reinterpret_cast", "const_cast",
        "noexcept",  "typeid",
        "requires",  "assert",
    };
    return kw.count(s) != 0;
}

/** Built-in type words that cannot be a parameter's *name*. */
bool
isTypeWord(const std::string &s)
{
    static const std::set<std::string> tw = {
        "void",   "bool",  "char",     "int",  "float",
        "double", "long",  "short",    "auto", "unsigned",
        "signed", "const", "volatile", "struct", "class",
    };
    return tw.count(s) != 0;
}

bool
inList(const std::vector<const char *> &names, const std::string &s)
{
    for (const char *n : names)
        if (s == n)
            return true;
    return false;
}

/** .size()/.empty()/... results are counts, not key bytes. */
bool
isAccessorName(const std::string &s)
{
    return s == "size" || s == "empty" || s == "length" ||
           s == "count";
}

/**
 * Functions whose result is a comparison verdict, not the compared
 * data. `hits += !memcmp(found, master, 32)` does not make `hits`
 * key material - declassification by comparison is the normal way
 * benchmarks score recovery.
 */
bool
isComparatorName(const std::string &s)
{
    return s == "memcmp" || s == "strcmp" || s == "strncmp" ||
           s == "strcasecmp" || s == "equal";
}

class Parser
{
  public:
    Parser(const std::string &path, const std::vector<Token> &toks)
        : path(path), t(toks)
    {
        out.path = path;
    }

    FileSummary
    run()
    {
        scanScope(0, t.size(), "");
        return std::move(out);
    }

  private:
    const std::string &path;
    const std::vector<Token> &t;
    FileSummary out;

    // ---- token helpers -------------------------------------------

    bool
    isP(size_t i, const char *s) const
    {
        return i < t.size() && t[i].kind == TokKind::Punct &&
               t[i].text == s;
    }

    bool
    isI(size_t i) const
    {
        return i < t.size() && t[i].kind == TokKind::Identifier;
    }

    bool
    isI(size_t i, const char *s) const
    {
        return isI(i) && t[i].text == s;
    }

    /** Index of the ')' matching the '(' at @p open, or npos. */
    size_t
    matchParen(size_t open) const
    {
        int depth = 0;
        for (size_t i = open; i < t.size(); ++i) {
            if (isP(i, "("))
                ++depth;
            else if (isP(i, ")") && --depth == 0)
                return i;
        }
        return npos;
    }

    /** Index of the '}' matching the '{' at @p open, or npos. */
    size_t
    matchBrace(size_t open) const
    {
        int depth = 0;
        for (size_t i = open; i < t.size(); ++i) {
            if (isP(i, "{"))
                ++depth;
            else if (isP(i, "}") && --depth == 0)
                return i;
        }
        return npos;
    }

    /**
     * Index of the '>' matching the '<' at @p open, or npos when it
     * does not close within @p limit tokens (then it was probably a
     * comparison, not a template argument list).
     */
    size_t
    matchAngle(size_t open, size_t limit = 64) const
    {
        int depth = 0;
        size_t end = open + limit < t.size() ? open + limit : t.size();
        for (size_t i = open; i < end; ++i) {
            if (isP(i, "<"))
                ++depth;
            else if (isP(i, ">") && --depth == 0)
                return i;
            else if (isP(i, ";") || isP(i, "{"))
                break;
        }
        return npos;
    }

    /** '::' spelled as two ':' tokens starting at @p i. */
    bool
    scopeAt(size_t i) const
    {
        return isP(i, ":") && isP(i + 1, ":");
    }

    /** Advance past a `;` at the current brace level. */
    size_t
    skipToSemicolon(size_t i, size_t end) const
    {
        int brace = 0, paren = 0;
        for (; i < end; ++i) {
            if (isP(i, "{"))
                ++brace;
            else if (isP(i, "}")) {
                if (brace == 0)
                    return i; // stray close: let the caller see it
                --brace;
            } else if (isP(i, "("))
                ++paren;
            else if (isP(i, ")") && paren > 0)
                --paren;
            else if (isP(i, ";") && brace == 0 && paren == 0)
                return i + 1;
        }
        return end;
    }

    /** Display-qualified name by walking back over `A::` chains. */
    std::string
    qualifiedName(size_t name_idx) const
    {
        std::string qual = t[name_idx].text;
        size_t i = name_idx;
        while (i >= 3 && scopeAt(i - 2) && isI(i - 3)) {
            qual = t[i - 3].text + "::" + qual;
            i -= 3;
        }
        return qual;
    }

    // ---- scope scanning ------------------------------------------

    /**
     * Scan declarations between @p i and @p end (exclusive), at
     * namespace/file scope. @p qual_prefix decorates method names
     * when scanning inside a class body.
     */
    void
    scanScope(size_t i, size_t end, const std::string &qual_prefix)
    {
        while (i < end) {
            if (t[i].kind == TokKind::Preprocessor) {
                ++i;
                continue;
            }
            if (isI(i, "namespace")) {
                size_t j = i + 1;
                while (j < end && !isP(j, "{") && !isP(j, ";") &&
                       !isP(j, "="))
                    ++j;
                if (isP(j, "{")) {
                    size_t close = matchBrace(j);
                    if (close == npos)
                        return;
                    scanScope(j + 1, close, qual_prefix);
                    i = close + 1;
                } else {
                    i = j + 1; // alias or using-directive tail
                }
                continue;
            }
            if (isI(i, "extern") && i + 1 < end &&
                t[i + 1].kind == TokKind::String && isP(i + 2, "{")) {
                size_t close = matchBrace(i + 2);
                if (close == npos)
                    return;
                scanScope(i + 3, close, qual_prefix);
                i = close + 1;
                continue;
            }
            if (isI(i, "template") && isP(i + 1, "<")) {
                size_t close = matchAngle(i + 1);
                i = close == npos ? i + 2 : close + 1;
                continue;
            }
            if ((isI(i, "struct") || isI(i, "class")) && isI(i + 1)) {
                size_t head = i + 2;
                if (isP(head, "<")) { // specialization args
                    size_t close = matchAngle(head);
                    if (close != npos)
                        head = close + 1;
                }
                if (isI(head, "final"))
                    ++head;
                if (isP(head, "{") || isP(head, ":") ||
                    isP(head, ";")) {
                    i = parseStruct(i + 1, head, end, qual_prefix);
                    continue;
                }
                // `struct X` used as a type in a declaration.
                i += 2;
                continue;
            }
            if (isI(i, "enum")) {
                size_t j = i + 1;
                while (j < end && !isP(j, "{") && !isP(j, ";"))
                    ++j;
                if (isP(j, "{")) {
                    size_t close = matchBrace(j);
                    i = close == npos ? end : close + 1;
                } else {
                    i = j + 1;
                }
                continue;
            }
            if (isI(i, "using") || isI(i, "typedef") ||
                isI(i, "friend") || isI(i, "static_assert")) {
                i = skipToSemicolon(i, end);
                continue;
            }
            if (isP(i, ";") || isP(i, "}")) {
                ++i;
                continue;
            }
            i = tryFunction(i, end, qual_prefix);
        }
    }

    /**
     * Try to parse a function definition starting somewhere at
     * statement position @p i. Returns the index to continue
     * scanning from, whether or not a definition was found.
     */
    size_t
    tryFunction(size_t i, size_t end, const std::string &qual_prefix)
    {
        // Find the parameter list '(' of this statement.
        size_t j = i;
        while (j < end && !isP(j, "(") && !isP(j, ";") &&
               !isP(j, "{") && !isP(j, "}") && !isP(j, "="))
            ++j;
        if (!isP(j, "(")) {
            if (isP(j, "{")) { // brace we cannot classify: skip it
                size_t close = matchBrace(j);
                return close == npos ? end : close + 1;
            }
            if (isP(j, "}"))
                return j; // let the caller close the scope
            return skipToSemicolon(i, end);
        }

        size_t name_idx = npos;
        std::string name;
        if (j >= 1 && isI(j - 1) && !isControlWord(t[j - 1].text)) {
            name_idx = j - 1;
            name = t[name_idx].text;
            if (name == "operator") {
                // operator() spells `operator ( ) (params)`.
                if (isP(j + 1, ")") && isP(j + 2, "(")) {
                    name = "operator()";
                    j += 2;
                } else {
                    return skipToSemicolon(i, end);
                }
            } else if (j >= 2 && isP(j - 2, "~")) {
                name = "~" + name;
            }
        } else if (j >= 2 && isP(j - 1, ">")) {
            // Templated name: `name<...>(` - walk back to the '<'.
            int depth = 0;
            size_t k = j - 1;
            while (k > 0) {
                if (isP(k, ">"))
                    ++depth;
                else if (isP(k, "<") && --depth == 0)
                    break;
                --k;
            }
            if (depth == 0 && k >= 1 && isI(k - 1) &&
                !isControlWord(t[k - 1].text)) {
                name_idx = k - 1;
                name = t[name_idx].text;
            }
        }
        if (name_idx == npos)
            return skipToSemicolon(i, end);

        size_t close = matchParen(j);
        if (close == npos)
            return end;

        // Between ')' and the body: cv-qualifiers, noexcept(...),
        // trailing return, ctor-initializers. `;` or `=` ends a
        // declaration instead.
        std::vector<Assign> ctor_inits;
        bool in_init_list = false;
        size_t k = close + 1;
        while (k < end) {
            if (isP(k, "{"))
                break;
            if (isP(k, ";"))
                return k + 1;
            if (isP(k, "=")) // = default / = delete / initializer
                return skipToSemicolon(k, end);
            if (isP(k, ":") && !isP(k + 1, ":")) {
                in_init_list = true;
                ++k;
                continue;
            }
            if (isP(k, "(")) {
                size_t c = matchParen(k);
                if (c == npos)
                    return end;
                if (in_init_list && isI(k - 1)) {
                    Assign a;
                    a.lhs = t[k - 1].text;
                    a.line = t[k - 1].line;
                    collectIdents(k + 1, c, a.rhs);
                    ctor_inits.push_back(std::move(a));
                }
                k = c + 1;
                continue;
            }
            if (isP(k, "<")) {
                size_t c = matchAngle(k);
                k = c == npos ? k + 1 : c + 1;
                continue;
            }
            if (isI(k) || isP(k, "-") || isP(k, ">") ||
                isP(k, "&") || isP(k, "*") || isP(k, ",") ||
                isP(k, ":") || isP(k, "[") || isP(k, "]") ||
                t[k].kind == TokKind::Number ||
                t[k].kind == TokKind::String) {
                ++k;
                continue;
            }
            return skipToSemicolon(i, end);
        }
        if (!isP(k, "{"))
            return end;

        FunctionDef fn;
        fn.name = name;
        fn.qual = qual_prefix.empty()
                      ? qualifiedName(name_idx)
                      : qual_prefix + "::" + name;
        fn.line = t[name_idx].line;
        fn.col = t[name_idx].col;
        parseParams(j + 1, close, fn.params);
        fn.assigns = std::move(ctor_inits);
        out.functions.push_back(std::move(fn));
        size_t fn_idx = out.functions.size() - 1;
        size_t body_end = parseBody(fn_idx, k);
        return body_end == npos ? end : body_end + 1;
    }

    /** Split `(`..`)` into parameters at top-level commas. */
    void
    parseParams(size_t b, size_t e, std::vector<Param> &params) const
    {
        size_t start = b;
        int paren = 0, angle = 0, brace = 0;
        for (size_t i = b; i <= e && i < t.size(); ++i) {
            bool at_end = i == e;
            bool split = at_end ||
                         (isP(i, ",") && paren == 0 && angle == 0 &&
                          brace == 0);
            if (!split) {
                if (isP(i, "("))
                    ++paren;
                else if (isP(i, ")"))
                    --paren;
                else if (isP(i, "{"))
                    ++brace;
                else if (isP(i, "}"))
                    --brace;
                else if (isP(i, "<") && (isI(i - 1) || isP(i - 1, ">")))
                    ++angle;
                else if (isP(i, ">") && angle > 0)
                    --angle;
                continue;
            }
            if (i > start)
                params.push_back(oneParam(start, i));
            start = i + 1;
        }
    }

    /** Parse one parameter group [b, e) into name + type. */
    Param
    oneParam(size_t b, size_t e) const
    {
        // Cut a default argument off.
        size_t cut = e;
        int paren = 0;
        for (size_t i = b; i < e; ++i) {
            if (isP(i, "("))
                ++paren;
            else if (isP(i, ")"))
                --paren;
            else if (isP(i, "=") && paren == 0) {
                cut = i;
                break;
            }
        }
        // Name: last identifier, skipping an array suffix.
        size_t name_idx = npos;
        size_t i = cut;
        while (i > b) {
            --i;
            if (isP(i, "]")) { // skip [N]
                while (i > b && !isP(i, "["))
                    --i;
                continue;
            }
            if (isI(i)) {
                name_idx = i;
                break;
            }
        }
        Param p;
        p.line = t[b].line;
        if (name_idx != npos && !isTypeWord(t[name_idx].text) &&
            !(name_idx == b)) // a lone token is an unnamed type
            p.name = t[name_idx].text;
        for (size_t k = b; k < cut; ++k) {
            if (k == name_idx && !p.name.empty())
                continue;
            if (!p.type.empty())
                p.type += ' ';
            p.type += t[k].text;
        }
        // An unnamed `SecureBuffer&` param: keep the type anyway.
        if (p.name.empty() && name_idx != npos &&
            !isTypeWord(t[name_idx].text))
            p.type = p.type.empty() ? t[name_idx].text
                                    : p.type + ' ' + t[name_idx].text;
        return p;
    }

    /** Append identifiers in [b, e) to @p out_idents (exemptions apply). */
    void
    collectIdents(size_t b, size_t e,
                  std::vector<std::string> &out_idents) const
    {
        for (size_t i = b; i < e && i < t.size(); ++i) {
            if (!isI(i) || isControlWord(t[i].text))
                continue;
            if (isP(i + 1, "(")) {
                // A callee name is not a value; a comparator's
                // arguments yield a verdict, not the data (even
                // when the argument list runs past the scan bound).
                if (isComparatorName(t[i].text)) {
                    size_t c = matchParen(i + 1);
                    if (c != npos)
                        i = c;
                }
                continue;
            }
            if (scopeAt(i + 1)) // qualifier, not a value
                continue;
            if (isP(i + 1, ".") && isI(i + 2) &&
                isAccessorName(t[i + 2].text) && isP(i + 3, "("))
                continue; // key.size() is a count, not the key
            out_idents.push_back(t[i].text);
        }
    }

    /**
     * Parse a function body starting at its '{' token. Fills
     * out.functions[fn_idx]; returns the index of the matching '}'
     * (or npos at EOF). Lambdas inside become their own
     * FunctionDefs, linked from the enclosing function by a call
     * edge and from the surrounding call's lambda_args.
     */
    size_t
    parseBody(size_t fn_idx, size_t open)
    {
        struct Group
        {
            bool is_call;
            size_t call_index; ///< into calls, valid when is_call
            bool ctor_style;   ///< `Type name(args)` declaration
            bool barrier;      ///< comparator: args stay inside
            int depth;         ///< paren depth inside this group
            int bdepth;        ///< brace depth at the group's `(`
        };
        std::vector<Group> groups;
        int paren_depth = 0;
        int brace_depth = 1;

        const auto &wc_calls = wallclockCallNames();
        const auto &wc_types = wallclockTypeNames();
        const auto &sec_types = secretTypeNames();

        auto fn = [&]() -> FunctionDef & {
            return out.functions[fn_idx];
        };

        size_t i = open + 1;
        while (i < t.size()) {
            // Braces end the body.
            if (isP(i, "{")) {
                ++brace_depth;
                ++i;
                continue;
            }
            if (isP(i, "}")) {
                if (--brace_depth == 0)
                    return i;
                ++i;
                continue;
            }

            // Lambda (or attribute, or subscript).
            if (isP(i, "[")) {
                if (isP(i + 1, "[")) { // [[attribute]]
                    size_t k = i + 2;
                    while (k < t.size() &&
                           !(isP(k, "]") && isP(k + 1, "]")))
                        ++k;
                    i = k + 2;
                    continue;
                }
                bool subscript = i > 0 && (isI(i - 1) && !isControlWord(
                                                             t[i - 1].text));
                subscript = subscript ||
                            (i > 0 && (isP(i - 1, ")") ||
                                       isP(i - 1, "]")));
                if (!subscript) {
                    size_t consumed = tryLambda(fn_idx, i, groups);
                    if (consumed != npos) {
                        i = consumed;
                        continue;
                    }
                }
                ++i;
                continue;
            }

            // Parenthesis groups: calls vs. plain grouping.
            if (isP(i, "(")) {
                bool is_call = false, ctor_style = false;
                bool barrier = false;
                size_t call_index = 0;
                if (i >= 1 && isI(i - 1) &&
                    !isControlWord(t[i - 1].text)) {
                    is_call = true;
                    size_t name_idx = i - 1;
                    CallSite c;
                    c.callee = t[name_idx].text;
                    c.line = t[name_idx].line;
                    c.col = t[name_idx].col;
                    c.member =
                        name_idx >= 1 &&
                        (isP(name_idx - 1, ".") ||
                         (isP(name_idx - 1, ">") && name_idx >= 2 &&
                          isP(name_idx - 2, "-")));
                    c.args.emplace_back();
                    barrier = isComparatorName(c.callee);
                    // `Type name(args)` is an init, not a call of
                    // `name`: note it so the close also records a
                    // copy edge. A member access is never a
                    // declaration.
                    if (!c.member && name_idx >= 1 &&
                        ((isI(name_idx - 1) &&
                          !isControlWord(t[name_idx - 1].text)) ||
                         isP(name_idx - 1, ">") ||
                         isP(name_idx - 1, "&") ||
                         isP(name_idx - 1, "*")))
                        ctor_style = true;
                    fn().calls.push_back(std::move(c));
                    call_index = fn().calls.size() - 1;
                } else if (i >= 2 && isP(i - 1, ">")) {
                    // Templated call `name<...>(`.
                    int depth = 0;
                    size_t k = i - 1;
                    while (k > 0) {
                        if (isP(k, ">"))
                            ++depth;
                        else if (isP(k, "<") && --depth == 0)
                            break;
                        --k;
                    }
                    if (depth == 0 && k >= 1 && isI(k - 1) &&
                        !isControlWord(t[k - 1].text)) {
                        is_call = true;
                        CallSite c;
                        c.callee = t[k - 1].text;
                        c.line = t[k - 1].line;
                        c.col = t[k - 1].col;
                        c.args.emplace_back();
                        barrier = isComparatorName(c.callee);
                        fn().calls.push_back(std::move(c));
                        call_index = fn().calls.size() - 1;
                    }
                }
                ++paren_depth;
                groups.push_back({is_call, call_index, ctor_style,
                                  barrier, paren_depth, brace_depth});
                ++i;
                continue;
            }
            if (isP(i, ")")) {
                if (!groups.empty() &&
                    groups.back().depth == paren_depth) {
                    Group g = groups.back();
                    groups.pop_back();
                    if (g.is_call && g.ctor_style) {
                        // `SecureBuffer copy(key)`: record the copy
                        // as an assignment edge for taint.
                        const CallSite &c = fn().calls[g.call_index];
                        Assign a;
                        a.lhs = c.callee;
                        a.line = c.line;
                        for (const auto &arg : c.args)
                            a.rhs.insert(a.rhs.end(), arg.begin(),
                                         arg.end());
                        if (!a.rhs.empty())
                            fn().assigns.push_back(std::move(a));
                    }
                }
                if (paren_depth > 0)
                    --paren_depth;
                ++i;
                continue;
            }
            if (isP(i, ",")) {
                // Commas inside a brace-init argument
                // (`f({buf, n})`) stay within the current argument.
                if (!groups.empty() && groups.back().is_call &&
                    groups.back().depth == paren_depth &&
                    groups.back().bdepth == brace_depth)
                    fn().calls[groups.back().call_index]
                        .args.emplace_back();
                ++i;
                continue;
            }

            // Assignments (including compound ops and `lhs[i] =`).
            if (isP(i, "=") && !isP(i + 1, "=") &&
                !(i >= 1 && (isP(i - 1, "=") || isP(i - 1, "!") ||
                             isP(i - 1, "<") || isP(i - 1, ">")))) {
                size_t lhs_idx = npos;
                if (i >= 1 && isI(i - 1))
                    lhs_idx = i - 1;
                else if (i >= 2 && isI(i - 2) &&
                         (isP(i - 1, "+") || isP(i - 1, "-") ||
                          isP(i - 1, "*") || isP(i - 1, "/") ||
                          isP(i - 1, "%") || isP(i - 1, "&") ||
                          isP(i - 1, "|") || isP(i - 1, "^")))
                    lhs_idx = i - 2;
                else if (i >= 1 && isP(i - 1, "]")) {
                    size_t k = i - 1;
                    int d = 0;
                    while (k > 0) {
                        if (isP(k, "]"))
                            ++d;
                        else if (isP(k, "[") && --d == 0)
                            break;
                        --k;
                    }
                    if (d == 0 && k >= 1 && isI(k - 1))
                        lhs_idx = k - 1;
                }
                if (lhs_idx != npos &&
                    !isControlWord(t[lhs_idx].text)) {
                    Assign a;
                    a.lhs = t[lhs_idx].text;
                    a.line = t[lhs_idx].line;
                    size_t e = i + 1;
                    size_t limit = e + 48;
                    int pd = 0;
                    while (e < t.size() && e < limit &&
                           !isP(e, ";") && !isP(e, "{") &&
                           !isP(e, "}")) {
                        if (isP(e, "(")) {
                            ++pd;
                        } else if (isP(e, ")")) {
                            // A `)` closing an enclosing group ends
                            // the rhs: `for (...; off += n)` must not
                            // leak the loop body into off's rhs.
                            if (pd == 0)
                                break;
                            --pd;
                        } else if (isP(e, ",") && pd == 0) {
                            break;
                        }
                        ++e;
                    }
                    collectIdents(i + 1, e, a.rhs);
                    if (!a.rhs.empty())
                        fn().assigns.push_back(std::move(a));
                }
                ++i;
                continue;
            }

            if (isI(i)) {
                const std::string &id = t[i].text;

                // Banned-nondeterminism markers for the
                // transitive-determinism pass.
                if (inList(wc_types, id))
                    fn().nondet.push_back(
                        {id, t[i].line, t[i].col});
                else if (inList(wc_calls, id) && isP(i + 1, "(") &&
                         !(i >= 1 && isP(i - 1, ".")))
                    fn().nondet.push_back(
                        {id, t[i].line, t[i].col});

                // Secret-typed local declarations.
                if (inList(sec_types, id)) {
                    size_t k = i + 1;
                    while (isP(k, "&") || isP(k, "*") ||
                           isI(k, "const"))
                        ++k;
                    if (isI(k) && !isControlWord(t[k].text) &&
                        (isP(k + 1, ";") || isP(k + 1, "=") ||
                         isP(k + 1, "(") || isP(k + 1, "{") ||
                         isP(k + 1, ",") || isP(k + 1, ")")))
                        fn().secret_locals.push_back(
                            {t[k].text, id, t[k].line});
                }

                // Attribute the identifier to enclosing call args.
                bool value_use = !isP(i + 1, "(") && !scopeAt(i + 1) &&
                                 !isControlWord(id);
                if (value_use && isP(i + 1, ".") && isI(i + 2) &&
                    isAccessorName(t[i + 2].text) && isP(i + 3, "("))
                    value_use = false;
                // Inside a comparator's argument list nothing
                // escapes to the enclosing calls: the result is a
                // verdict, not the compared bytes.
                bool fenced = false;
                for (const auto &g : groups)
                    fenced = fenced || g.barrier;
                if (value_use && !fenced) {
                    for (const auto &g : groups) {
                        if (!g.is_call)
                            continue;
                        auto &args =
                            fn().calls[g.call_index].args;
                        if (!args.empty())
                            args.back().push_back(id);
                    }
                }
                ++i;
                continue;
            }

            ++i;
        }
        return npos;
    }

    /**
     * Try to parse a lambda whose '[' sits at @p i. On success the
     * lambda is registered as its own function, linked from the
     * enclosing function and the innermost surrounding call, and the
     * index just past its body is returned. npos when it is not a
     * lambda after all.
     */
    template <typename Groups>
    size_t
    tryLambda(size_t fn_idx, size_t i, Groups &groups)
    {
        // Capture list.
        int d = 0;
        size_t close = npos;
        for (size_t k = i; k < t.size() && k < i + 64; ++k) {
            if (isP(k, "["))
                ++d;
            else if (isP(k, "]") && --d == 0) {
                close = k;
                break;
            }
        }
        if (close == npos)
            return npos;

        size_t k = close + 1;
        size_t params_b = npos, params_e = npos;
        if (isP(k, "(")) {
            size_t c = matchParen(k);
            if (c == npos)
                return npos;
            params_b = k + 1;
            params_e = c;
            k = c + 1;
        }
        // mutable / noexcept / -> type ... up to the body.
        size_t limit = k + 32;
        while (k < t.size() && k < limit && !isP(k, "{")) {
            if (isP(k, ";") || isP(k, ")") || isP(k, ",") ||
                isP(k, "]"))
                return npos; // e.g. `[a]` as an array literal index
            if (isP(k, "(")) {
                size_t c = matchParen(k);
                if (c == npos)
                    return npos;
                k = c + 1;
                continue;
            }
            if (isP(k, "<")) {
                size_t c = matchAngle(k);
                k = c == npos ? k + 1 : c + 1;
                continue;
            }
            ++k;
        }
        if (!isP(k, "{"))
            return npos;

        FunctionDef lam;
        lam.name = "<lambda>";
        lam.qual = "<lambda " + path + ":" +
                   std::to_string(t[i].line) + ">";
        lam.line = t[i].line;
        lam.col = t[i].col;
        lam.is_lambda = true;
        if (params_b != npos)
            parseParams(params_b, params_e, lam.params);
        out.functions.push_back(std::move(lam));
        size_t lam_idx = out.functions.size() - 1;

        // Enclosing function "calls" the lambda (reachability), and
        // the innermost surrounding call argument records it (so
        // parallelForChunks(..., [&]{...}) knows its body).
        CallSite link;
        link.callee = out.functions[lam_idx].qual;
        link.line = t[i].line;
        link.col = t[i].col;
        link.args.emplace_back();
        out.functions[fn_idx].calls.push_back(std::move(link));
        for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
            if (it->is_call) {
                out.functions[fn_idx]
                    .calls[it->call_index]
                    .lambda_args.push_back(
                        static_cast<int>(lam_idx));
                break;
            }
        }

        size_t body_end = parseBody(lam_idx, k);
        return body_end == npos ? npos : body_end + 1;
    }

    /**
     * Parse a struct/class definition whose name token is at
     * @p name_idx and whose head cursor (at `{`, `:` or `;`) is
     * @p head. Returns the index to continue from.
     */
    size_t
    parseStruct(size_t name_idx, size_t head, size_t end,
                const std::string &qual_prefix)
    {
        const std::string name = t[name_idx].text;
        if (isP(head, ";"))
            return head + 1; // forward declaration

        // Skip a base-clause to the '{'.
        size_t open = head;
        while (open < end && !isP(open, "{") && !isP(open, ";"))
            ++open;
        if (!isP(open, "{"))
            return open + 1;
        size_t close = matchBrace(open);
        if (close == npos)
            return end;

        StructDef sd;
        sd.name = name;
        sd.line = t[name_idx].line;
        sd.col = t[name_idx].col;
        const std::string qual =
            qual_prefix.empty() ? name : qual_prefix + "::" + name;

        size_t i = open + 1;
        while (i < close) {
            if (t[i].kind == TokKind::Preprocessor) {
                ++i;
                continue;
            }
            // Access specifiers.
            if ((isI(i, "public") || isI(i, "private") ||
                 isI(i, "protected")) &&
                isP(i + 1, ":") && !isP(i + 2, ":")) {
                i += 2;
                continue;
            }
            if (isI(i, "template") && isP(i + 1, "<")) {
                size_t c = matchAngle(i + 1);
                i = c == npos ? i + 2 : c + 1;
                continue;
            }
            if ((isI(i, "struct") || isI(i, "class")) && isI(i + 1)) {
                size_t h = i + 2;
                if (isI(h, "final"))
                    ++h;
                if (isP(h, "{") || isP(h, ":") || isP(h, ";")) {
                    i = parseStruct(i + 1, h, close, qual);
                    continue;
                }
                i += 2;
                continue;
            }
            if (isI(i, "enum")) {
                size_t j = i + 1;
                while (j < close && !isP(j, "{") && !isP(j, ";"))
                    ++j;
                if (isP(j, "{")) {
                    size_t c = matchBrace(j);
                    i = c == npos ? close : c + 1;
                    // trailing `;`
                    if (isP(i, ";"))
                        ++i;
                } else {
                    i = j + 1;
                }
                continue;
            }
            if (isI(i, "using") || isI(i, "typedef") ||
                isI(i, "friend") || isI(i, "static_assert")) {
                i = skipToSemicolon(i, close);
                continue;
            }
            if (isP(i, ";")) {
                ++i;
                continue;
            }

            // Destructor.
            if (isP(i, "~") && isI(i + 1, name.c_str()) &&
                isP(i + 2, "(")) {
                sd.has_dtor = true;
                size_t c = matchParen(i + 2);
                if (c == npos)
                    return end;
                size_t k = c + 1;
                while (k < close && !isP(k, "{") && !isP(k, ";") &&
                       !isP(k, "="))
                    ++k;
                if (isP(k, "{")) {
                    FunctionDef fn;
                    fn.name = "~" + name;
                    fn.qual = qual + "::~" + name;
                    fn.line = t[i].line;
                    fn.col = t[i].col;
                    out.functions.push_back(std::move(fn));
                    size_t fi = out.functions.size() - 1;
                    size_t body_end = parseBody(fi, k);
                    for (const auto &call :
                         out.functions[fi].calls)
                        if (call.callee == "secureWipe" ||
                            call.callee == "wipe")
                            sd.dtor_wipes = true;
                    i = body_end == npos ? close : body_end + 1;
                } else {
                    // `~X() = default;` or a declaration.
                    i = skipToSemicolon(k, close);
                }
                continue;
            }

            // Decide member vs. method by the first structural
            // token of the statement.
            size_t j = i;
            int angle = 0;
            while (j < close) {
                if (isP(j, "<") && (isI(j - 1) || isP(j - 1, ">")))
                    ++angle;
                else if (isP(j, ">") && angle > 0)
                    --angle;
                else if (angle == 0 &&
                         (isP(j, "(") || isP(j, ";") ||
                          isP(j, "=") || isP(j, "{")))
                    break;
                ++j;
            }
            if (isP(j, "(")) {
                // Method (or constructor) - reuse the function path.
                i = tryFunction(i, close, qual);
                continue;
            }
            // Data member: [i, j) is `type ... name` (maybe with an
            // array suffix before the delimiter).
            size_t stmt_end = j;
            bool is_static = false;
            for (size_t k2 = i; k2 < stmt_end; ++k2)
                if (isI(k2, "static") || isI(k2, "constexpr"))
                    is_static = true;
            size_t mname = npos;
            bool array = false;
            size_t k2 = stmt_end;
            while (k2 > i) {
                --k2;
                if (isP(k2, "]")) {
                    array = true;
                    while (k2 > i && !isP(k2, "["))
                        --k2;
                    continue;
                }
                if (isI(k2)) {
                    mname = k2;
                    break;
                }
            }
            if (!is_static && mname != npos && mname > i &&
                !isTypeWord(t[mname].text)) {
                Param m;
                m.name = t[mname].text;
                m.line = t[mname].line;
                for (size_t k3 = i; k3 < mname; ++k3) {
                    if (!m.type.empty())
                        m.type += ' ';
                    m.type += t[k3].text;
                }
                if (array)
                    m.type += " []";
                sd.members.push_back(std::move(m));
            }
            // Skip past the initializer / to the semicolon.
            if (isP(j, "{")) {
                size_t c = matchBrace(j);
                i = c == npos ? close : c + 1;
                if (isP(i, ";"))
                    ++i;
            } else if (isP(j, "=")) {
                i = skipToSemicolon(j, close);
            } else {
                i = j + 1;
            }
        }

        out.structs.push_back(std::move(sd));
        return close + 1;
    }
};

} // anonymous namespace

FileSummary
parseSummary(const std::string &path, const LexResult &lex)
{
    return Parser(path, lex.tokens).run();
}

} // namespace coldboot::lint
