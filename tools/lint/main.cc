/**
 * @file
 * coldboot-lint CLI.
 *
 * Exit codes follow the bench_compare convention:
 *   0  clean tree
 *   1  findings reported
 *   2  internal error (bad flags, unreadable root, broken config)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint/engine.hh"

namespace
{

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: coldboot-lint [options] [path...]\n"
        "\n"
        "Static analysis for the coldboot tree: secret hygiene,\n"
        "banned APIs, determinism, include hygiene.\n"
        "\n"
        "options:\n"
        "  --root DIR        scan relative to DIR (default: .)\n"
        "  --format FMT      text | json | sarif (default: text)\n"
        "  --out FILE        write the report to FILE instead of\n"
        "                    stdout\n"
        "  --cache-dir DIR   incremental cache: unchanged files\n"
        "                    reuse their stored findings and parse\n"
        "                    summaries (default: no cache)\n"
        "  --explain RULE    print a rule's rationale with a\n"
        "                    violating example and its fix, then\n"
        "                    exit\n"
        "  --list-rules      print the rule catalog and exit\n"
        "  --version         print the tool version and exit\n"
        "  -h, --help        this text\n"
        "\n"
        "paths default to: src bench tests tools\n"
        "\n"
        "exit codes: 0 clean, 1 findings, 2 internal error\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace coldboot::lint;

    LintOptions options;
    std::string format = "text";
    std::string out_path;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "coldboot-lint: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        }
        if (arg == "--version") {
            std::printf("coldboot-lint %s\n", lintVersion());
            return 0;
        }
        if (arg == "--list-rules") {
            for (const auto &r : ruleCatalog())
                std::printf("%-22s %s\n", r.id, r.description);
            return 0;
        }
        if (arg == "--explain") {
            const char *id = value("--explain");
            const RuleInfo *r = findRule(id);
            if (r == nullptr) {
                std::fprintf(stderr,
                             "coldboot-lint: unknown rule '%s' "
                             "(see --list-rules)\n",
                             id);
                return 2;
            }
            std::printf("%s\n  %s\n\nwhy:\n  %s\n\n"
                        "violation:\n%s\n\nfix:\n%s\n",
                        r->id, r->description, r->rationale,
                        r->example_bad, r->example_fix);
            return 0;
        }
        if (arg == "--root") {
            options.root = value("--root");
            continue;
        }
        if (arg == "--cache-dir") {
            options.cache_dir = value("--cache-dir");
            continue;
        }
        if (arg == "--format") {
            format = value("--format");
            if (format != "text" && format != "json" &&
                format != "sarif") {
                std::fprintf(stderr,
                             "coldboot-lint: unknown format '%s' "
                             "(want text|json|sarif)\n",
                             format.c_str());
                return 2;
            }
            continue;
        }
        if (arg == "--out") {
            out_path = value("--out");
            continue;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "coldboot-lint: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
        paths.push_back(arg);
    }
    if (!paths.empty())
        options.paths = paths;

    LintResult result = lintTree(options);
    if (result.internal_error) {
        std::fprintf(stderr, "coldboot-lint: %s\n",
                     result.error_message.c_str());
        return 2;
    }

    std::string report;
    if (format == "json")
        report = emitJson(result);
    else if (format == "sarif")
        report = emitSarif(result);
    else
        report = emitText(result);

    if (out_path.empty()) {
        std::fputs(report.c_str(), stdout);
        if (!report.empty() && report.back() != '\n')
            std::fputc('\n', stdout);
    } else {
        std::ofstream out(out_path, std::ios::binary);
        if (!out || !(out << report) || !out.flush()) {
            std::fprintf(stderr,
                         "coldboot-lint: cannot write '%s'\n",
                         out_path.c_str());
            return 2;
        }
        // Findings still get a terminal echo so CI logs are useful
        // without opening the artifact.
        if (!result.findings.empty())
            std::fputs(emitText(result).c_str(), stderr);
    }

    return result.findings.empty() ? 0 : 1;
}
