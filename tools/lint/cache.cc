#include "lint/cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace coldboot::lint
{

namespace fs = std::filesystem;

namespace
{

/** Bump when the record layout below changes. */
constexpr int kFormatVersion = 1;

std::string
escapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
        case '\\':
            out += "\\\\";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += ch;
        }
    }
    return out;
}

std::string
unescapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        ++i;
        switch (s[i]) {
        case 't':
            out += '\t';
            break;
        case 'n':
            out += '\n';
            break;
        default:
            out += s[i];
        }
    }
    return out;
}

std::vector<std::string>
splitFields(const std::string &line)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        // A field ends at a tab not preceded by an odd number of
        // backslashes (escaped tabs stay inside the field).
        size_t i = start;
        while (i < line.size()) {
            if (line[i] == '\\') {
                i += 2;
                continue;
            }
            if (line[i] == '\t')
                break;
            ++i;
        }
        if (i > line.size())
            i = line.size();
        out.push_back(unescapeField(line.substr(start, i - start)));
        if (i >= line.size())
            break;
        start = i + 1;
    }
    return out;
}

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

fs::path
entryPath(const std::string &cache_dir, const std::string &rel_path)
{
    return fs::path(cache_dir) /
           (hex64(fnv1a64(rel_path)) + ".cbl");
}

class Writer
{
  public:
    template <typename... Fields>
    void
    row(Fields &&...fields)
    {
        bool first = true;
        ((out << (first ? "" : "\t")
              << escapeField(toField(std::forward<Fields>(fields))),
          first = false),
         ...);
        out << '\n';
    }

    std::string
    str() const
    {
        return out.str();
    }

  private:
    static std::string
    toField(const std::string &s)
    {
        return s;
    }
    static std::string
    toField(const char *s)
    {
        return s;
    }
    static std::string
    toField(int v)
    {
        return std::to_string(v);
    }
    static std::string
    toField(bool v)
    {
        return v ? "1" : "0";
    }
    static std::string
    toField(size_t v)
    {
        return std::to_string(v);
    }

    std::ostringstream out;
};

std::string
joinIdents(const std::vector<std::string> &idents)
{
    std::string out;
    for (const auto &id : idents) {
        if (!out.empty())
            out += ' ';
        out += id;
    }
    return out;
}

std::vector<std::string>
splitIdents(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream in(s);
    std::string word;
    while (in >> word)
        out.push_back(word);
    return out;
}

} // anonymous namespace

uint64_t
fnv1a64(std::string_view data, uint64_t seed)
{
    uint64_t h = seed;
    for (unsigned char c : data) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

bool
cacheLoad(const std::string &cache_dir, const std::string &rel_path,
          uint64_t content_hash, uint64_t ruleset_hash,
          FileArtifacts &out)
{
    std::ifstream in(entryPath(cache_dir, rel_path),
                     std::ios::binary);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line))
        return false;
    {
        std::istringstream head(line);
        std::string magic;
        int fmt = 0;
        std::string version, chash, rhash;
        head >> magic >> fmt >> version >> chash >> rhash;
        if (magic != "coldboot-lint-cache" ||
            fmt != kFormatVersion || chash != hex64(content_hash) ||
            rhash != hex64(ruleset_hash))
            return false;
    }

    out = FileArtifacts{};
    out.summary.path = rel_path;
    FunctionDef *fn = nullptr;
    StructDef *st = nullptr;
    CallSite *call = nullptr;
    bool sealed = false;
    while (std::getline(in, line)) {
        auto f = splitFields(line);
        if (f.empty())
            continue;
        const std::string &tag = f[0];
        auto num = [&](size_t i) {
            return i < f.size() ? std::atoi(f[i].c_str()) : 0;
        };
        auto str = [&](size_t i) {
            return i < f.size() ? f[i] : std::string();
        };
        if (tag == "end") {
            sealed = true; // entry fully written (rename is atomic,
                           // but belt and braces)
        } else if (tag == "S") {
            out.suppressions.push_back(
                {num(1), str(3), num(2) != 0});
        } else if (tag == "F") {
            Finding fd;
            fd.rule = str(1);
            fd.file = rel_path;
            fd.line = num(2);
            fd.col = num(3);
            fd.message = str(4);
            out.findings.push_back(std::move(fd));
        } else if (tag == "fn") {
            out.summary.functions.emplace_back();
            fn = &out.summary.functions.back();
            call = nullptr;
            fn->line = num(1);
            fn->col = num(2);
            fn->is_lambda = num(3) != 0;
            fn->name = str(4);
            fn->qual = str(5);
        } else if (tag == "p" && fn != nullptr) {
            fn->params.push_back({str(2), str(3), num(1)});
        } else if (tag == "sl" && fn != nullptr) {
            fn->secret_locals.push_back({str(2), str(3), num(1)});
        } else if (tag == "c" && fn != nullptr) {
            fn->calls.emplace_back();
            call = &fn->calls.back();
            call->line = num(1);
            call->col = num(2);
            call->member = num(3) != 0;
            call->callee = str(4);
        } else if (tag == "a" && call != nullptr) {
            call->args.push_back(splitIdents(str(1)));
        } else if (tag == "la" && call != nullptr) {
            for (const auto &w : splitIdents(str(1)))
                call->lambda_args.push_back(
                    std::atoi(w.c_str()));
        } else if (tag == "as" && fn != nullptr) {
            Assign a;
            a.line = num(1);
            a.lhs = str(2);
            a.rhs = splitIdents(str(3));
            fn->assigns.push_back(std::move(a));
        } else if (tag == "nd" && fn != nullptr) {
            fn->nondet.push_back({str(3), num(1), num(2)});
        } else if (tag == "st") {
            out.summary.structs.emplace_back();
            st = &out.summary.structs.back();
            st->line = num(1);
            st->col = num(2);
            st->has_dtor = num(3) != 0;
            st->dtor_wipes = num(4) != 0;
            st->name = str(5);
        } else if (tag == "m" && st != nullptr) {
            st->members.push_back({str(2), str(3), num(1)});
        }
    }
    return sealed;
}

bool
cacheStore(const std::string &cache_dir, const std::string &rel_path,
           uint64_t content_hash, uint64_t ruleset_hash,
           const FileArtifacts &artifacts)
{
    Writer w;
    for (const auto &s : artifacts.suppressions)
        w.row("S", s.line, s.standalone, s.rule);
    for (const auto &f : artifacts.findings)
        w.row("F", f.rule, f.line, f.col, f.message);
    for (const auto &fn : artifacts.summary.functions) {
        w.row("fn", fn.line, fn.col, fn.is_lambda, fn.name,
              fn.qual);
        for (const auto &p : fn.params)
            w.row("p", p.line, p.name, p.type);
        for (const auto &l : fn.secret_locals)
            w.row("sl", l.line, l.name, l.type);
        for (const auto &c : fn.calls) {
            w.row("c", c.line, c.col, c.member, c.callee);
            for (const auto &arg : c.args)
                w.row("a", joinIdents(arg));
            if (!c.lambda_args.empty()) {
                std::string idx;
                for (int v : c.lambda_args) {
                    if (!idx.empty())
                        idx += ' ';
                    idx += std::to_string(v);
                }
                w.row("la", idx);
            }
        }
        for (const auto &a : fn.assigns)
            w.row("as", a.line, a.lhs, joinIdents(a.rhs));
        for (const auto &n : fn.nondet)
            w.row("nd", n.line, n.col, n.what);
    }
    for (const auto &st : artifacts.summary.structs) {
        w.row("st", st.line, st.col, st.has_dtor, st.dtor_wipes,
              st.name);
        for (const auto &m : st.members)
            w.row("m", m.line, m.name, m.type);
    }
    w.row("end");

    std::error_code ec;
    fs::create_directories(cache_dir, ec);
    fs::path final = entryPath(cache_dir, rel_path);
    fs::path tmp = final;
    tmp += ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << "coldboot-lint-cache " << kFormatVersion << " "
            << "v1 " << hex64(content_hash) << " "
            << hex64(ruleset_hash) << "\n";
        out << w.str();
        if (!out)
            return false;
    }
    fs::rename(tmp, final, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace coldboot::lint
