#include "lint/rules.hh"

#include <algorithm>
#include <cctype>

namespace coldboot::lint
{

namespace
{

const std::vector<RuleInfo> catalog = {
    {"secret-wipe",
     "memset/bzero on key-material identifiers can be elided by the "
     "optimizer; use secureWipe() from common/secure.hh",
     "A wipe-before-free memset is a dead store to the compiler: "
     "nothing reads the buffer afterwards, so -O2 deletes exactly "
     "the scrub a cold-boot defence depends on. secureWipe() stores "
     "through a volatile pointer and ends with a compiler barrier.",
     "std::memset(master_key, 0, sizeof(master_key));",
     "secureWipe(master_key, sizeof(master_key));"},
    {"banned-api",
     "rand/strcpy/sprintf/gets/system and raw new[] are "
     "non-deterministic or overflow-prone",
     "rand/srand share hidden global state and cannot be seeded "
     "per-experiment; the str*/sprintf family writes unbounded; "
     "system() is a shell-injection surface. All have in-tree "
     "replacements (common/rng, std::string, snprintf).",
     "char buf[64]; sprintf(buf, \"%s\", name.c_str());",
     "std::string buf = name;  // or snprintf(buf, sizeof buf, ...)"},
    {"no-wallclock-in-sim",
     "wall-clock time and OS entropy break seeded determinism; use "
     "common/rng and steady_clock",
     "Every experiment must replay byte-identically from its seed "
     "(DESIGN.md §9). time()/system_clock/random_device smuggle "
     "host state into results; steady_clock is fine for durations "
     "and common/rng for entropy.",
     "auto now = std::chrono::system_clock::now();",
     "auto t0 = std::chrono::steady_clock::now();  // duration only"},
    {"include-hygiene",
     "headers need an include guard and must not contain "
     "'using namespace'",
     "An unguarded header breaks the one-definition rule the moment "
     "two TUs meet it; a using-directive in a header rewrites name "
     "lookup for every includer.",
     "// foo.hh, no guard\nusing namespace std;",
     "#ifndef COLDBOOT_FOO_HH\n#define COLDBOOT_FOO_HH\n...\n#endif"},
    {"log-no-secrets",
     "key-material identifiers must not be passed to logging calls",
     "Log files outlive the process and leave the machine; one "
     "logged key voids the whole memory-scrambler analysis "
     "(\"Security Through Amnesia\": a key touching persistent "
     "storage once is a full compromise). Sizes and counts are fine; "
     "bytes are not.",
     "cb_inform(\"derived key %s\", hex(master_key).c_str());",
     "cb_inform(\"derived %zu key bytes\", master_key.size());"},
    {"no-raw-thread",
     "std::thread/std::jthread/pthread_create outside src/exec/; "
     "use exec::ThreadPool so work stays observable and bounded",
     "Raw threads bypass COLDBOOT_THREADS/--threads sizing, the "
     "exec.pool.* stats, and the ordered-reduction determinism "
     "contract. src/exec/ is the one place a real thread may be "
     "constructed.",
     "std::thread worker([&] { mine(); }); worker.join();",
     "exec::TaskGroup g(pool); g.run([&] { mine(); }); g.wait();"},
    {"bad-suppression",
     "malformed 'coldboot-lint: allow(<rule>) -- <why>' comment",
     "A suppression that names an unknown rule or omits its "
     "justification silently stops suppressing after a rename - or "
     "never suppressed at all. Malformed waivers are findings so "
     "they cannot rot in place.",
     "// coldboot-lint: allow(secret-wipe)",
     "// coldboot-lint: allow(secret-wipe) -- fixture, fake key"},
    {"secret-taint",
     "key material must not flow into logging or output sinks, "
     "directly or through assignments and calls across TUs",
     "The token-level log-no-secrets rule sees one line at a time; a "
     "key copied into an innocuously named local, or passed through "
     "two helper calls, leaks just as completely. This pass seeds "
     "taint at key-material sources (MinedKey, RecoveredAesKey, "
     "SecureBuffer contents, key-named identifiers), propagates it "
     "through assignments and call arguments over the project call "
     "graph, and reports any path that reaches a sink with the full "
     "inter-procedural trace as a SARIF code flow.",
     "auto copy = mined.key_bytes; report(copy);\n"
     "// elsewhere: void report(v) { cb_inform(\"%s\", hex(v)); }",
     "cb_inform(\"recovered %zu bytes\", mined.key_bytes.size());"},
    {"transitive-determinism",
     "functions reachable from parallelForChunks/"
     "parallelMapReduceChunks bodies must not transitively reach "
     "wall-clock or OS entropy",
     "The DESIGN.md §9 contract - byte-identical results at any "
     "pool width - dies if any function called from a parallel "
     "region reads host state, even three calls deep in another TU. "
     "This upgrades no-wallclock-in-sim from one line to call-graph "
     "depth.",
     "parallelForChunks(0, n, g, [&](c) { stamp(c); });\n"
     "// elsewhere: void stamp(c) { c.t = time(nullptr); }",
     "pass the seeded rng / steady_clock origin in as a parameter"},
    {"wipe-coverage",
     "types owning key-named byte storage need a wiping destructor "
     "(or store it in a SecureBuffer)",
     "Per-callsite wipe rules miss the type that never wipes at all: "
     "a struct holding key bytes in a plain vector leaves them in "
     "freed heap pages on every destruction - exactly the remanence "
     "this project attacks. Self-wiping members (SecureBuffer, types "
     "with wiping destructors) satisfy the rule.",
     "struct Candidate { std::vector<uint8_t> key_bytes; };",
     "struct Candidate { SecureBuffer key_bytes; };  // or add\n"
     "~Candidate() { secureWipe(key_bytes); }"},
};

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

bool
isHeaderPath(const std::string &path)
{
    auto ends_with = [&](const char *suffix) {
        std::string_view sv(suffix);
        return path.size() >= sv.size() &&
               path.compare(path.size() - sv.size(), sv.size(), sv) ==
                   0;
    };
    return ends_with(".hh") || ends_with(".h") || ends_with(".hpp");
}

/** Index of the matching ')' for the '(' at @p open, or npos. */
size_t
matchParen(const std::vector<Token> &toks, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Punct)
            continue;
        if (toks[i].text == "(")
            ++depth;
        else if (toks[i].text == ")" && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/** Is token @p i an identifier with text @p t followed by '(' ? */
bool
isCall(const std::vector<Token> &toks, size_t i, const char *t)
{
    return toks[i].kind == TokKind::Identifier && toks[i].text == t &&
           i + 1 < toks.size() &&
           toks[i + 1].kind == TokKind::Punct &&
           toks[i + 1].text == "(";
}

/** Member access right before token @p i (foo.time() is not ::time). */
bool
precededByDot(const std::vector<Token> &toks, size_t i)
{
    return i > 0 && toks[i - 1].kind == TokKind::Punct &&
           toks[i - 1].text == ".";
}

void
ruleSecretWipe(const std::string &path, const std::vector<Token> &toks,
               std::vector<Finding> &out)
{
    // explicit_bzero is deliberately absent: it is a guaranteed
    // wipe, not an elidable one (just non-portable).
    static const char *wipers[] = {"memset", "bzero",
                                   "__builtin_memset"};
    for (size_t i = 0; i < toks.size(); ++i) {
        for (const char *fn : wipers) {
            if (!isCall(toks, i, fn))
                continue;
            size_t close = matchParen(toks, i + 1);
            if (close == std::string::npos)
                continue;
            for (size_t a = i + 2; a < close; ++a) {
                if (toks[a].kind == TokKind::Identifier &&
                    looksSecret(toks[a].text)) {
                    out.push_back(
                        {"secret-wipe", path, toks[i].line,
                         toks[i].col,
                         std::string(fn) + " on '" + toks[a].text +
                             "' may be optimized away; use "
                             "secureWipe() (common/secure.hh)",
                 {}});
                    break;
                }
            }
        }
    }
}

void
ruleBannedApi(const std::string &path, const std::vector<Token> &toks,
              std::vector<Finding> &out)
{
    static const struct
    {
        const char *fn;
        const char *why;
    } banned[] = {
        {"rand", "not seedable per-experiment; use common/rng"},
        {"srand", "global RNG state; use common/rng"},
        {"strcpy", "unbounded copy; use std::string or std::copy"},
        {"strcat", "unbounded append; use std::string"},
        {"sprintf", "unbounded format; use snprintf or std::format"},
        {"vsprintf", "unbounded format; use vsnprintf"},
        {"gets", "unbounded read; use std::getline"},
        {"system", "shell injection surface; spawn nothing"},
    };
    for (size_t i = 0; i < toks.size(); ++i) {
        for (const auto &b : banned) {
            if (isCall(toks, i, b.fn) && !precededByDot(toks, i)) {
                out.push_back({"banned-api", path, toks[i].line,
                               toks[i].col,
                               std::string("'") + b.fn + "' is "
                               "banned: " + b.why,
                 {}});
            }
        }
        // Raw array new: `new T[n]` (vector/unique_ptr<T[]> instead).
        if (toks[i].kind == TokKind::Identifier &&
            toks[i].text == "new") {
            for (size_t j = i + 1;
                 j < toks.size() && j < i + 12; ++j) {
                if (toks[j].kind == TokKind::Punct) {
                    const std::string &p = toks[j].text;
                    if (p == "[") {
                        out.push_back(
                            {"banned-api", path, toks[i].line,
                             toks[i].col,
                             "raw new[] is banned outside tests; "
                             "use std::vector or "
                             "std::unique_ptr<T[]>",
                 {}});
                        break;
                    }
                    if (p == "(" || p == ";" || p == ")" ||
                        p == "{" || p == "=" || p == ",")
                        break;
                }
            }
        }
    }
}

void
ruleNoWallclock(const std::string &path, const std::vector<Token> &toks,
                std::vector<Finding> &out)
{
    const auto &calls = wallclockCallNames();
    const auto &types = wallclockTypeNames();
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier)
            continue;
        for (const char *fn : calls) {
            if (isCall(toks, i, fn) && !precededByDot(toks, i)) {
                out.push_back(
                    {"no-wallclock-in-sim", path, toks[i].line,
                     toks[i].col,
                     std::string("'") + fn + "' reads the wall "
                     "clock; simulation must be deterministic "
                     "(steady_clock for durations, common/rng for "
                     "entropy)",
                 {}});
            }
        }
        for (const char *ty : types) {
            if (toks[i].text == ty) {
                out.push_back(
                    {"no-wallclock-in-sim", path, toks[i].line,
                     toks[i].col,
                     std::string("'") + ty + "' breaks seeded "
                     "determinism; use steady_clock / common/rng",
                 {}});
            }
        }
    }
}

void
ruleIncludeHygiene(const std::string &path,
                   const std::vector<Token> &toks,
                   std::vector<Finding> &out)
{
    if (!isHeaderPath(path))
        return;

    // Guard check over the preprocessor directives.
    std::vector<const Token *> directives;
    for (const auto &t : toks)
        if (t.kind == TokKind::Preprocessor)
            directives.push_back(&t);

    auto directive_word = [](const Token &t, size_t n) {
        // n-th whitespace-separated word after '#'.
        std::string_view sv(t.text);
        std::vector<std::string> words;
        size_t i = 0;
        while (i < sv.size() && words.size() <= n + 1) {
            while (i < sv.size() &&
                   (sv[i] == ' ' || sv[i] == '\t' || sv[i] == '#'))
                ++i;
            size_t start = i;
            while (i < sv.size() && sv[i] != ' ' && sv[i] != '\t')
                ++i;
            if (i > start)
                words.emplace_back(sv.substr(start, i - start));
        }
        return n < words.size() ? words[n] : std::string();
    };

    bool guarded = false;
    for (size_t d = 0; d < directives.size() && !guarded; ++d) {
        const std::string w0 = directive_word(*directives[d], 0);
        if (w0 == "pragma" &&
            directive_word(*directives[d], 1) == "once")
            guarded = true;
        if (w0 == "ifndef" && d + 1 < directives.size() &&
            directive_word(*directives[d + 1], 0) == "define" &&
            directive_word(*directives[d], 1) ==
                directive_word(*directives[d + 1], 1) &&
            !directive_word(*directives[d], 1).empty())
            guarded = true;
    }
    if (!guarded)
        out.push_back({"include-hygiene", path, 1, 1,
                       "header has no include guard (#pragma once "
                       "or #ifndef/#define pair)",
                 {}});

    // `using namespace` in a header leaks into every includer.
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind == TokKind::Identifier &&
            toks[i].text == "using" &&
            toks[i + 1].kind == TokKind::Identifier &&
            toks[i + 1].text == "namespace") {
            out.push_back({"include-hygiene", path, toks[i].line,
                           toks[i].col,
                           "'using namespace' in a header pollutes "
                           "every includer; qualify names instead",
                 {}});
        }
    }
}

void
ruleLogNoSecrets(const std::string &path,
                 const std::vector<Token> &toks,
                 std::vector<Finding> &out)
{
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier ||
            !isLogCall(toks[i].text))
            continue;
        if (i + 1 >= toks.size() ||
            toks[i + 1].kind != TokKind::Punct ||
            toks[i + 1].text != "(")
            continue;
        size_t close = matchParen(toks, i + 1);
        if (close == std::string::npos)
            continue;
        for (size_t a = i + 2; a < close; ++a) {
            if (toks[a].kind != TokKind::Identifier ||
                !looksSecret(toks[a].text))
                continue;
            // Logging a size/count of key material is fine; only
            // the bytes themselves are secret.
            if (a + 2 < close && toks[a + 1].kind == TokKind::Punct &&
                toks[a + 1].text == "." &&
                toks[a + 2].kind == TokKind::Identifier &&
                (toks[a + 2].text == "size" ||
                 toks[a + 2].text == "empty" ||
                 toks[a + 2].text == "length" ||
                 toks[a + 2].text == "count"))
                continue;
            // Report at the call so a suppression comment above the
            // (possibly multi-line) call covers it.
            out.push_back(
                {"log-no-secrets", path, toks[i].line, toks[i].col,
                 "'" + toks[a].text + "' looks like key material; "
                 "never pass secrets to " + toks[i].text + "()",
                 {}});
        }
    }
}

void
ruleNoRawThread(const std::string &path,
                const std::vector<Token> &toks,
                std::vector<Finding> &out)
{
    // src/exec/ is the one home of raw threads - everything else
    // runs on its ThreadPool, which keeps worker counts governed by
    // COLDBOOT_THREADS/--threads and the exec.pool.* stats honest.
    if (path.compare(0, 9, "src/exec/") == 0)
        return;

    // The lexer emits '::' as two ':' punct tokens.
    auto scope_at = [&](size_t i) {
        return i + 1 < toks.size() &&
               toks[i].kind == TokKind::Punct &&
               toks[i].text == ":" &&
               toks[i + 1].kind == TokKind::Punct &&
               toks[i + 1].text == ":";
    };
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind == TokKind::Identifier &&
            toks[i].text == "std" && scope_at(i + 1) &&
            i + 3 < toks.size() &&
            toks[i + 3].kind == TokKind::Identifier &&
            (toks[i + 3].text == "thread" ||
             toks[i + 3].text == "jthread")) {
            // std::thread::id, std::thread::hardware_concurrency and
            // friends are scoped members, not thread construction.
            if (scope_at(i + 4))
                continue;
            out.push_back(
                {"no-raw-thread", path, toks[i].line, toks[i].col,
                 "raw std::" + toks[i + 3].text + " outside "
                 "src/exec/; submit work to exec::ThreadPool "
                 "(exec/thread_pool.hh) instead",
                 {}});
        }
        if (isCall(toks, i, "pthread_create") &&
            !precededByDot(toks, i)) {
            out.push_back(
                {"no-raw-thread", path, toks[i].line, toks[i].col,
                 "pthread_create outside src/exec/; submit work to "
                 "exec::ThreadPool (exec/thread_pool.hh) instead",
                 {}});
        }
    }
}

} // anonymous namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    return catalog;
}

const RuleInfo *
findRule(const std::string &id)
{
    for (const auto &r : catalog)
        if (id == r.id)
            return &r;
    return nullptr;
}

bool
isKnownRule(const std::string &id)
{
    return findRule(id) != nullptr;
}

const std::vector<const char *> &
secretTypeNames()
{
    // HeaderFields / MountedVolume / the Recovered* results hold the
    // actual decrypted volume keys; MinedKey is a schedule mined out
    // of a dump; SecureBuffer is key material by declaration.
    static const std::vector<const char *> names = {
        "SecureBuffer",     "MinedKey",        "RecoveredAesKey",
        "RecoveredXtsKeys", "HeaderFields",    "MountedVolume",
    };
    return names;
}

const std::vector<const char *> &
wipingTypeNames()
{
    static const std::vector<const char *> names = {"SecureBuffer"};
    return names;
}

const std::vector<const char *> &
wallclockCallNames()
{
    // Deliberately not "clock": the engine layer models cycle
    // clocks with methods of that name, and ::clock() is CPU time,
    // not wall time.
    static const std::vector<const char *> names = {
        "time",      "gettimeofday", "clock_gettime",
        "localtime", "localtime_r",  "gmtime",
        "gmtime_r",  "strftime",     "ftime",
        "timespec_get",
    };
    return names;
}

const std::vector<const char *> &
wallclockTypeNames()
{
    static const std::vector<const char *> names = {
        "system_clock", "random_device", "high_resolution_clock"};
    return names;
}

bool
isLogCall(const std::string &name)
{
    return name == "cb_inform" || name == "cb_warn" ||
           name == "cb_fatal" || name == "cb_panic" ||
           (name.size() > 4 && name.compare(0, 4, "LOG_") == 0);
}

bool
isSinkCall(const std::string &name)
{
    if (isLogCall(name))
        return true;
    // stdio / file / socket output: anything that moves bytes out of
    // the process's address space. memcpy/assignment are not sinks -
    // they only propagate taint.
    static const char *out_fns[] = {
        "printf", "fprintf", "dprintf", "vprintf", "vfprintf",
        "fwrite", "fputs",   "puts",    "perror",  "write",
        "pwrite", "send",    "sendto",  "sendmsg", "syslog",
    };
    for (const char *fn : out_fns)
        if (name == fn)
            return true;
    return false;
}

bool
looksSecret(const std::string &ident)
{
    const std::string low = lowered(ident);
    static const char *patterns[] = {"key", "secret", "master",
                                     "passphrase", "password"};
    for (const char *p : patterns)
        if (low.find(p) != std::string::npos)
            return true;
    return false;
}

bool
looksKeyMaterial(const std::string &ident)
{
    if (!looksSecret(ident))
        return false;
    const std::string low = lowered(ident);
    // Metadata about keys, not the bytes themselves: key_size,
    // keytable_addr, key_match, distinct_keys, max_key_latency_ps...
    static const char *demotions[] = {
        "size",  "len",      "addr",  "offset", "idx",
        "index", "count",    "match", "hits",   "distinct",
        "name",  "label",    "path",  "type",   "latency",
        "rate",  "level",    "table", "_ps",    "_ns",
        "_ms",   "rounds",   "nkeys", "n_keys",
    };
    for (const char *d : demotions)
        if (low.find(d) != std::string::npos)
            return false;
    // A bare `key` is as often a stat-registry / JSON lookup key as
    // it is key bytes; too weak to amplify across the call graph.
    return low != "key" && low != "keys";
}

std::vector<Finding>
runRules(const std::string &path, const LexResult &lex,
         const std::set<std::string> &disabled)
{
    std::vector<Finding> out;
    auto enabled = [&](const char *rule) {
        return disabled.find(rule) == disabled.end();
    };
    if (enabled("secret-wipe"))
        ruleSecretWipe(path, lex.tokens, out);
    if (enabled("banned-api"))
        ruleBannedApi(path, lex.tokens, out);
    if (enabled("no-wallclock-in-sim"))
        ruleNoWallclock(path, lex.tokens, out);
    if (enabled("include-hygiene"))
        ruleIncludeHygiene(path, lex.tokens, out);
    if (enabled("log-no-secrets"))
        ruleLogNoSecrets(path, lex.tokens, out);
    if (enabled("no-raw-thread"))
        ruleNoRawThread(path, lex.tokens, out);
    return out;
}

} // namespace coldboot::lint
