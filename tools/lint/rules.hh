/**
 * @file
 * coldboot-lint rule catalog and rule engine.
 *
 * Each rule enforces one project invariant (see README "Static
 * analysis" for the catalog with rationale):
 *
 *   secret-wipe         memset/bzero on key-material identifiers -
 *                       dead-store elimination can skip the wipe; use
 *                       secureWipe() from common/secure.hh.
 *   banned-api          rand/strcpy/sprintf/gets/system and raw
 *                       new[]: non-deterministic, overflow-prone, or
 *                       both.
 *   no-wallclock-in-sim time()/system_clock/random_device outside
 *                       the allowed zones - the simulator must stay
 *                       deterministic given a seed.
 *   include-hygiene     headers need an include guard (#pragma once
 *                       or #ifndef/#define) and must not contain
 *                       `using namespace`.
 *   log-no-secrets      key-material identifiers may not be passed
 *                       to cb_* logging / LOG_* calls.
 *   no-raw-thread       std::thread / std::jthread / pthread_create
 *                       outside src/exec/ - parallel work must run
 *                       on exec::ThreadPool so COLDBOOT_THREADS and
 *                       the exec.pool.* stats govern it (scoped
 *                       members like std::thread::id are fine).
 *   bad-suppression     malformed `coldboot-lint: allow(...)`
 *                       comments (wrong syntax, unknown rule, or
 *                       missing justification).
 */

#ifndef COLDBOOT_TOOLS_LINT_RULES_HH
#define COLDBOOT_TOOLS_LINT_RULES_HH

#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hh"

namespace coldboot::lint
{

/** One rule violation. */
struct Finding
{
    std::string rule;
    std::string file; ///< path as given to the engine
    int line = 0;
    int col = 0;
    std::string message;
};

/** Catalog entry: stable rule id plus a one-line description. */
struct RuleInfo
{
    const char *id;
    const char *description;
};

/** All rules, in catalog order (includes bad-suppression). */
const std::vector<RuleInfo> &ruleCatalog();

/** Whether @p id names a rule in the catalog. */
bool isKnownRule(const std::string &id);

/**
 * Whether @p ident looks like key material (contains key / secret /
 * master / passphrase / password, case-insensitive). Shared by
 * secret-wipe and log-no-secrets.
 */
bool looksSecret(const std::string &ident);

/**
 * Run every rule not in @p disabled over one file's token stream.
 * @p path is used for reporting and for the header-only rules
 * (include-hygiene applies to .h/.hh/.hpp files).
 */
std::vector<Finding> runRules(const std::string &path,
                              const LexResult &lex,
                              const std::set<std::string> &disabled);

} // namespace coldboot::lint

#endif // COLDBOOT_TOOLS_LINT_RULES_HH
