/**
 * @file
 * coldboot-lint rule catalog and rule engine.
 *
 * Each rule enforces one project invariant (see README "Static
 * analysis" for the catalog with rationale):
 *
 *   secret-wipe         memset/bzero on key-material identifiers -
 *                       dead-store elimination can skip the wipe; use
 *                       secureWipe() from common/secure.hh.
 *   banned-api          rand/strcpy/sprintf/gets/system and raw
 *                       new[]: non-deterministic, overflow-prone, or
 *                       both.
 *   no-wallclock-in-sim time()/system_clock/random_device outside
 *                       the allowed zones - the simulator must stay
 *                       deterministic given a seed.
 *   include-hygiene     headers need an include guard (#pragma once
 *                       or #ifndef/#define) and must not contain
 *                       `using namespace`.
 *   log-no-secrets      key-material identifiers may not be passed
 *                       to cb_* logging / LOG_* calls.
 *   no-raw-thread       std::thread / std::jthread / pthread_create
 *                       outside src/exec/ - parallel work must run
 *                       on exec::ThreadPool so COLDBOOT_THREADS and
 *                       the exec.pool.* stats govern it (scoped
 *                       members like std::thread::id are fine).
 *   bad-suppression     malformed `coldboot-lint: allow(...)`
 *                       comments (wrong syntax, unknown rule, or
 *                       missing justification).
 *
 * Three further rules run on the project-wide call graph rather than
 * one file's token stream (tools/lint/dataflow.hh):
 *
 *   secret-taint            key material reaches a logging / output
 *                           sink through assignments and call
 *                           arguments, possibly across translation
 *                           units; the SARIF report carries the full
 *                           inter-procedural path as a code flow.
 *   transitive-determinism  a function reachable from a
 *                           parallelForChunks / parallelMapReduce-
 *                           Chunks body transitively calls wall-clock
 *                           or OS-entropy APIs.
 *   wipe-coverage           a struct/class owns key-named byte
 *                           storage but has no destructor that
 *                           secureWipe()s it.
 */

#ifndef COLDBOOT_TOOLS_LINT_RULES_HH
#define COLDBOOT_TOOLS_LINT_RULES_HH

#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hh"

namespace coldboot::lint
{

/**
 * One hop of an inter-procedural path (SARIF threadFlowLocation):
 * where the value was sourced, handed to a callee, or sunk.
 */
struct FlowStep
{
    std::string file;
    int line = 0;
    int col = 0;
    std::string note; ///< human-readable step description
};

/** One rule violation. */
struct Finding
{
    std::string rule;
    std::string file; ///< path as given to the engine
    int line = 0;
    int col = 0;
    std::string message;
    /**
     * Inter-procedural path for call-graph findings, source first,
     * sink last. Empty for single-location findings. Rendered as
     * SARIF codeFlows/threadFlows.
     */
    std::vector<FlowStep> flow;
};

/**
 * Catalog entry: stable rule id, one-line description, and the
 * explain/help metadata. The same table feeds `--explain <rule>`,
 * `--list-rules` and the SARIF rule metadata, so the three cannot
 * drift apart.
 */
struct RuleInfo
{
    const char *id;
    const char *description;
    const char *rationale;   ///< why the project enforces this
    const char *example_bad; ///< minimal violating snippet
    const char *example_fix; ///< the corrected snippet
};

/** All rules, in catalog order (includes bad-suppression). */
const std::vector<RuleInfo> &ruleCatalog();

/** Catalog entry for @p id, or nullptr if unknown. */
const RuleInfo *findRule(const std::string &id);

/** Whether @p id names a rule in the catalog. */
bool isKnownRule(const std::string &id);

/**
 * Whether @p ident looks like key material (contains key / secret /
 * master / passphrase / password, case-insensitive). Shared by
 * secret-wipe and log-no-secrets.
 */
bool looksSecret(const std::string &ident);

/**
 * Stricter variant for the dataflow passes: looksSecret() plus
 * demotions for identifiers that are *about* keys without holding
 * key bytes - sizes, addresses, match counts, stat-registry key
 * strings ("key" alone), and so on. Token rules keep the loose
 * heuristic (a direct `cb_warn(..., key)` is worth a look either
 * way); taint tracking amplifies every seed across the call graph,
 * so its seeds must be high-confidence.
 */
bool looksKeyMaterial(const std::string &ident);

/**
 * Type names that hold key material by construction. Locals and
 * parameters of these types seed the secret-taint pass regardless of
 * the variable's name.
 */
const std::vector<const char *> &secretTypeNames();

/**
 * Self-wiping type names: holding key bytes in one of these
 * satisfies wipe-coverage (the destructor guarantees the wipe).
 */
const std::vector<const char *> &wipingTypeNames();

/** Functions whose call reads the wall clock (banned in the sim). */
const std::vector<const char *> &wallclockCallNames();

/** Type names that break seeded determinism (system_clock, ...). */
const std::vector<const char *> &wallclockTypeNames();

/** Whether @p name is a logging entry point (cb_* / LOG_*). */
bool isLogCall(const std::string &name);

/**
 * Whether a call to @p name emits data beyond the process: logging,
 * stdio/file output, or socket writes. These are the secret-taint
 * sinks.
 */
bool isSinkCall(const std::string &name);

/**
 * Run every rule not in @p disabled over one file's token stream.
 * @p path is used for reporting and for the header-only rules
 * (include-hygiene applies to .h/.hh/.hpp files).
 */
std::vector<Finding> runRules(const std::string &path,
                              const LexResult &lex,
                              const std::set<std::string> &disabled);

} // namespace coldboot::lint

#endif // COLDBOOT_TOOLS_LINT_RULES_HH
