/**
 * @file
 * Minimal C++ tokenizer for coldboot-lint.
 *
 * Not a compiler front end: the rule engine only needs a faithful
 * stream of identifiers, punctuation and preprocessor directives with
 * accurate line/column positions, plus the guarantee that nothing
 * inside comments, string literals (including raw strings), or char
 * literals ever reaches a rule. Comments are collected separately so
 * the engine can honor `// coldboot-lint: allow(<rule>) -- why`
 * suppressions.
 */

#ifndef COLDBOOT_TOOLS_LINT_LEXER_HH
#define COLDBOOT_TOOLS_LINT_LEXER_HH

#include <string>
#include <string_view>
#include <vector>

namespace coldboot::lint
{

/** Token classification; exactly what the rules need, nothing more. */
enum class TokKind {
    Identifier,   ///< identifiers and keywords
    Number,       ///< numeric literals (incl. digit separators)
    String,       ///< string literal (text is the decoded-ish body)
    CharLit,      ///< character literal
    Punct,        ///< single punctuation character
    Preprocessor, ///< one whole directive (continuations joined)
};

/** One token with its source position (1-based line and column). */
struct Token
{
    TokKind kind;
    std::string text;
    int line = 0;
    int col = 0;
};

/** One comment (line or block), for suppression scanning. */
struct Comment
{
    std::string text; ///< body without the // or /* */ markers
    int line = 0;     ///< line the comment starts on
    int col = 0;      ///< column the comment starts on
    /**
     * True when nothing but whitespace precedes the comment on its
     * line. A standalone suppression covers the next line; a trailing
     * one (after code) covers only its own line.
     */
    bool standalone = false;
};

/** Tokenization result: token stream plus the comment sidecar. */
struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/**
 * Tokenize @p source. Never fails: unterminated literals are
 * consumed to end of line/file, unknown bytes become Punct tokens.
 */
LexResult lex(std::string_view source);

} // namespace coldboot::lint

#endif // COLDBOOT_TOOLS_LINT_LEXER_HH
