#include "lint/callgraph.hh"

namespace coldboot::lint
{

CallGraph::CallGraph(const std::vector<FileSummary> &summaries)
{
    for (size_t fi = 0; fi < summaries.size(); ++fi) {
        const FileSummary &fs = summaries[fi];
        for (size_t gi = 0; gi < fs.functions.size(); ++gi) {
            const FunctionDef &fn = fs.functions[gi];
            size_t id = nodes_.size();
            nodes_.push_back({&fn, &fs, fi, gi});
            by_position_[{fi, gi}] = id;
            // Lambdas are only callable through their unique qual
            // (`<lambda file:line>`); everything else by simple
            // name. Indexing methods by simple name means a call to
            // `wipe` resolves to every `wipe` - conservative on
            // purpose.
            by_name_[fn.is_lambda ? fn.qual : fn.name].push_back(id);
        }
    }
}

const std::vector<size_t> &
CallGraph::resolve(const std::string &callee) const
{
    auto it = by_name_.find(callee);
    return it == by_name_.end() ? empty_ : it->second;
}

size_t
CallGraph::lambdaNode(size_t file_index, size_t fn_in_file) const
{
    auto it = by_position_.find({file_index, fn_in_file});
    return it == by_position_.end() ? npos : it->second;
}

} // namespace coldboot::lint
