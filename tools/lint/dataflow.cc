#include "lint/dataflow.hh"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "lint/callgraph.hh"

namespace coldboot::lint
{

namespace
{

constexpr size_t kNpos = static_cast<size_t>(-1);
/** Inter-procedural paths longer than this are not reported. */
constexpr int kMaxHops = 12;
/** Call-graph walks give up past this depth (cycles aside). */
constexpr int kMaxDepth = 20;

bool
typeMentions(const std::string &type, const char *word)
{
    return type.find(word) != std::string::npos;
}

bool
typeIsSecret(const std::string &type)
{
    for (const char *n : secretTypeNames())
        if (typeMentions(type, n))
            return true;
    return false;
}

bool
typeIsSelfWiping(const std::string &type)
{
    for (const char *n : wipingTypeNames())
        if (typeMentions(type, n))
            return true;
    return false;
}

/**
 * Owned byte storage the enclosing object is responsible for wiping:
 * containers and in-place arrays, but not pointers/spans/views
 * (ownership elsewhere) and not scalars (a `key_schedule_rounds`
 * count is not key material).
 */
bool
typeOwnsBytes(const std::string &type)
{
    if (typeMentions(type, "*") || typeMentions(type, "span") ||
        typeMentions(type, "view") || typeMentions(type, "ptr") ||
        typeMentions(type, "&"))
        return false;
    return typeMentions(type, "vector") ||
           typeMentions(type, "array") ||
           typeMentions(type, "string") || typeMentions(type, "[]");
}

/** Intersect a call-argument identifier list with a taint set. */
const std::string *
firstTainted(const std::vector<std::string> &idents,
             const std::set<std::string> &taint)
{
    for (const auto &id : idents)
        if (taint.count(id))
            return &id;
    return nullptr;
}

/**
 * Close @p taint over the function's assignment edges: `a = b` with
 * b tainted taints a. Flow-insensitive fixpoint (order within the
 * body is ignored - conservative).
 */
void
closeOverAssigns(const FunctionDef &fn, std::set<std::string> &taint)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &a : fn.assigns) {
            if (taint.count(a.lhs))
                continue;
            if (firstTainted(a.rhs, taint) != nullptr) {
                taint.insert(a.lhs);
                changed = true;
            }
        }
    }
}

/**
 * How param @p k of a function reaches a sink: either a direct sink
 * call in its body, or a call edge into another (node, param) that
 * does. `dist` is the hop count to the sink (1 = sinks directly).
 */
struct SinkReach
{
    int dist = -1; ///< -1 = does not reach a sink
    bool via_sink = false;
    int line = 0, col = 0;  ///< witness call site
    std::string callee;     ///< witness callee name
    size_t next_node = 0;   ///< when !via_sink: the callee node...
    size_t next_param = 0;  ///< ...and which of its params
};

/** The secret-taint inter-procedural pass. */
class TaintPass
{
  public:
    TaintPass(const std::vector<FileSummary> &summaries,
              const CallGraph &graph)
        : summaries(summaries), graph(graph)
    {
        buildParamTaints();
        solveSinkReachability();
    }

    void
    report(std::vector<Finding> &out) const
    {
        for (size_t n = 0; n < graph.nodes().size(); ++n)
            reportNode(n, out);
    }

  private:
    const std::vector<FileSummary> &summaries;
    const CallGraph &graph;
    /** Per node: per named param, the intra-function taint set. */
    std::vector<std::map<size_t, std::set<std::string>>> param_taint;
    /** Sink reachability per (node, param index). */
    std::map<std::pair<size_t, size_t>, SinkReach> reach;

    void
    buildParamTaints()
    {
        param_taint.resize(graph.nodes().size());
        for (size_t n = 0; n < graph.nodes().size(); ++n) {
            const FunctionDef &fn = *graph.nodes()[n].fn;
            for (size_t k = 0; k < fn.params.size(); ++k) {
                if (fn.params[k].name.empty())
                    continue;
                std::set<std::string> taint = {fn.params[k].name};
                closeOverAssigns(fn, taint);
                param_taint[n][k] = std::move(taint);
            }
        }
    }

    void
    solveSinkReachability()
    {
        // Direct sinks first (dist 1)...
        for (size_t n = 0; n < graph.nodes().size(); ++n) {
            const FunctionDef &fn = *graph.nodes()[n].fn;
            for (const auto &[k, taint] : param_taint[n]) {
                for (const auto &c : fn.calls) {
                    if (c.member || !isSinkCall(c.callee))
                        continue;
                    bool hit = false;
                    for (const auto &arg : c.args)
                        if (firstTainted(arg, taint)) {
                            hit = true;
                            break;
                        }
                    if (!hit)
                        continue;
                    SinkReach &r = reach[{n, k}];
                    if (r.dist == -1) {
                        r = {1, true, c.line, c.col, c.callee, 0, 0};
                    }
                    break;
                }
            }
        }
        // ...then propagate backwards over call edges until fixed.
        for (int pass = 0; pass < kMaxHops; ++pass) {
            bool changed = false;
            for (size_t n = 0; n < graph.nodes().size(); ++n) {
                const FunctionDef &fn = *graph.nodes()[n].fn;
                for (const auto &[k, taint] : param_taint[n]) {
                    SinkReach &cur = reach[{n, k}];
                    for (const auto &c : fn.calls) {
                        for (size_t m : graph.resolve(c.callee)) {
                            if (m == n)
                                continue;
                            if (edgeImproves(c, taint, m, cur)) {
                                changed = true;
                            }
                        }
                    }
                }
            }
            if (!changed)
                break;
        }
    }

    /**
     * If call @p c hands taint into some param of node @p m that
     * reaches a sink, and that shortens @p cur, update @p cur.
     */
    bool
    edgeImproves(const CallSite &c,
                 const std::set<std::string> &taint, size_t m,
                 SinkReach &cur)
    {
        const FunctionDef &callee = *graph.nodes()[m].fn;
        for (size_t j = 0;
             j < c.args.size() && j < callee.params.size(); ++j) {
            if (callee.params[j].name.empty())
                continue;
            if (!firstTainted(c.args[j], taint))
                continue;
            auto it = reach.find({m, j});
            if (it == reach.end() || it->second.dist < 0)
                continue;
            int d = it->second.dist + 1;
            if (d > kMaxHops)
                continue;
            if (cur.dist != -1 && cur.dist <= d)
                continue;
            cur = {d, false, c.line, c.col, c.callee, m, j};
            return true;
        }
        return false;
    }

    /** Seed set of one function, with where each seed came from. */
    struct Seed
    {
        int line = 0;
        std::string why; ///< e.g. "local of type MinedKey"
    };

    std::map<std::string, Seed>
    seedsOf(const FunctionDef &fn) const
    {
        std::map<std::string, Seed> seeds;
        for (const auto &l : fn.secret_locals)
            seeds.emplace(l.name,
                          Seed{l.line ? l.line : fn.line,
                               "local of key-material type " +
                                   l.type});
        for (const auto &p : fn.params)
            if (!p.name.empty() && typeIsSecret(p.type))
                seeds.emplace(
                    p.name,
                    Seed{fn.line, "parameter of key-material type"});
        auto heuristic = [&](const std::string &id, int line) {
            if (looksKeyMaterial(id))
                seeds.emplace(
                    id, Seed{line, "identifier names key material"});
        };
        for (const auto &a : fn.assigns) {
            heuristic(a.lhs, a.line);
            for (const auto &r : a.rhs)
                heuristic(r, a.line);
        }
        for (const auto &c : fn.calls)
            for (const auto &arg : c.args)
                for (const auto &id : arg)
                    heuristic(id, c.line);
        return seeds;
    }

    /**
     * Walk a SinkReach witness chain into flow steps and return the
     * final sink's callee name.
     */
    std::string
    appendChain(size_t node, size_t param,
                std::vector<FlowStep> &flow) const
    {
        std::string sink;
        for (int hop = 0; hop <= kMaxHops; ++hop) {
            auto it = reach.find({node, param});
            if (it == reach.end() || it->second.dist < 0)
                break;
            const SinkReach &r = it->second;
            const GraphNode &gn = graph.nodes()[node];
            if (r.via_sink) {
                flow.push_back({gn.file->path, r.line, r.col,
                                "sinks into '" + r.callee + "' in " +
                                    gn.fn->qual});
                sink = r.callee;
                break;
            }
            const GraphNode &tgt = graph.nodes()[r.next_node];
            flow.push_back(
                {gn.file->path, r.line, r.col,
                 gn.fn->qual + " passes it to '" + tgt.fn->qual +
                     "' parameter '" +
                     tgt.fn->params[r.next_param].name + "'"});
            node = r.next_node;
            param = r.next_param;
        }
        return sink;
    }

    void
    reportNode(size_t n, std::vector<Finding> &out) const
    {
        const GraphNode &gn = graph.nodes()[n];
        const FunctionDef &fn = *gn.fn;
        auto seeds = seedsOf(fn);
        if (seeds.empty())
            return;

        std::set<std::string> taint;
        std::map<std::string, const std::string *> root_of;
        for (const auto &[name, seed] : seeds) {
            taint.insert(name);
            root_of[name] = &name;
        }
        // Close over assigns, remembering which seed each alias
        // traces back to (first writer wins - good enough for the
        // report; the taint itself is exact either way).
        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto &a : fn.assigns) {
                if (taint.count(a.lhs))
                    continue;
                const std::string *src = firstTainted(a.rhs, taint);
                if (src == nullptr)
                    continue;
                taint.insert(a.lhs);
                root_of[a.lhs] = root_of[*src];
                changed = true;
            }
        }

        // One finding per (call site, root): a loop that hands the
        // same key to the same sink twice is one problem.
        std::set<std::pair<int, std::string>> reported;
        for (const auto &c : fn.calls) {
            if (!c.member && isSinkCall(c.callee)) {
                for (const auto &arg : c.args) {
                    const std::string *x = firstTainted(arg, taint);
                    if (x == nullptr)
                        continue;
                    // Direct `cb_warn(..., master_key)` is owned by
                    // the token rule log-no-secrets; report here
                    // only what that rule cannot see (aliases,
                    // typed seeds).
                    const std::string &root = *root_of.at(*x);
                    if (isLogCall(c.callee) && looksSecret(*x) &&
                        *x == root)
                        continue;
                    if (!reported.emplace(c.line, root).second)
                        continue;
                    Finding f;
                    f.rule = "secret-taint";
                    f.file = gn.file->path;
                    f.line = c.line;
                    f.col = c.col;
                    f.message = "key material '" + root +
                                "' reaches output sink '" +
                                c.callee + "'" +
                                (*x != root ? " via alias '" + *x +
                                                  "'"
                                            : "");
                    f.flow.push_back(
                        {gn.file->path, seeds.at(root).line, 1,
                         "source: " + seeds.at(root).why + " ('" +
                             root + "')"});
                    f.flow.push_back({gn.file->path, c.line, c.col,
                                      "sinks into '" + c.callee +
                                          "' in " + fn.qual});
                    out.push_back(std::move(f));
                    break;
                }
                continue;
            }
            for (size_t m : graph.resolve(c.callee)) {
                if (m == n)
                    continue;
                const FunctionDef &callee = *graph.nodes()[m].fn;
                bool done = false;
                for (size_t j = 0; j < c.args.size() &&
                                   j < callee.params.size() &&
                                   !done;
                     ++j) {
                    if (callee.params[j].name.empty())
                        continue;
                    const std::string *x =
                        firstTainted(c.args[j], taint);
                    if (x == nullptr)
                        continue;
                    auto it = reach.find({m, j});
                    if (it == reach.end() || it->second.dist < 0)
                        continue;
                    const std::string &root = *root_of.at(*x);
                    if (!reported.emplace(c.line, root).second)
                        continue;
                    Finding f;
                    f.rule = "secret-taint";
                    f.file = gn.file->path;
                    f.line = c.line;
                    f.col = c.col;
                    f.flow.push_back(
                        {gn.file->path, seeds.at(root).line, 1,
                         "source: " + seeds.at(root).why + " ('" +
                             root + "')"});
                    f.flow.push_back(
                        {gn.file->path, c.line, c.col,
                         fn.qual + " passes '" + *x + "' to '" +
                             callee.qual + "' parameter '" +
                             callee.params[j].name + "'"});
                    std::string sink = appendChain(m, j, f.flow);
                    f.message =
                        "key material '" + root + "' flows into '" +
                        callee.qual + "' and reaches output sink" +
                        (sink.empty() ? "" : " '" + sink + "'") +
                        " (" + std::to_string(it->second.dist) +
                        " hop(s) away)";
                    out.push_back(std::move(f));
                    done = true;
                }
                if (done)
                    break;
            }
        }
    }
};

/** The transitive-determinism pass. */
void
reportDeterminism(const CallGraph &graph, std::vector<Finding> &out)
{
    struct Hop
    {
        size_t parent;
        int line, col;
    };
    std::set<std::string> dedup;

    for (size_t n = 0; n < graph.nodes().size(); ++n) {
        const GraphNode &gn = graph.nodes()[n];
        for (const auto &c : gn.fn->calls) {
            if (c.callee != "parallelForChunks" &&
                c.callee != "parallelMapReduceChunks")
                continue;
            for (int lam_local : c.lambda_args) {
                size_t root = graph.lambdaNode(
                    gn.file_index, static_cast<size_t>(lam_local));
                if (root == CallGraph::npos)
                    continue;
                // BFS from the parallel body. Depth 0 (the lambda
                // itself) is the token rule's territory; only
                // transitively-reached functions are news.
                std::map<size_t, Hop> parent;
                std::vector<std::pair<size_t, int>> queue = {
                    {root, 0}};
                std::set<size_t> visited = {root};
                for (size_t qi = 0; qi < queue.size(); ++qi) {
                    auto [cur, depth] = queue[qi];
                    const GraphNode &cn = graph.nodes()[cur];
                    if (depth > 0 && !cn.fn->nondet.empty()) {
                        const NondetUse &use = cn.fn->nondet.front();
                        std::string key =
                            gn.file->path +
                            std::to_string(c.line) + cn.fn->qual;
                        if (dedup.insert(key).second) {
                            Finding f;
                            f.rule = "transitive-determinism";
                            f.file = gn.file->path;
                            f.line = c.line;
                            f.col = c.col;
                            f.message =
                                "parallel region transitively "
                                "calls nondeterministic '" +
                                use.what + "' in " + cn.fn->qual +
                                " (" + cn.file->path + ":" +
                                std::to_string(use.line) + ")";
                            f.flow.push_back(
                                {gn.file->path, c.line, c.col,
                                 "deterministic parallel region "
                                 "starts here (" +
                                     c.callee + ")"});
                            // Parent chain, root-first.
                            std::vector<FlowStep> chain;
                            size_t walk = cur;
                            while (walk != root) {
                                auto pit = parent.find(walk);
                                if (pit == parent.end())
                                    break;
                                const GraphNode &wn =
                                    graph.nodes()[walk];
                                const GraphNode &pn =
                                    graph.nodes()[pit->second
                                                      .parent];
                                chain.push_back(
                                    {pn.file->path,
                                     pit->second.line,
                                     pit->second.col,
                                     pn.fn->qual + " calls " +
                                         wn.fn->qual});
                                walk = pit->second.parent;
                            }
                            for (auto rit = chain.rbegin();
                                 rit != chain.rend(); ++rit)
                                f.flow.push_back(*rit);
                            f.flow.push_back(
                                {cn.file->path, use.line, use.col,
                                 "'" + use.what +
                                     "' breaks seeded determinism "
                                     "here"});
                            out.push_back(std::move(f));
                        }
                    }
                    if (depth >= kMaxDepth)
                        continue;
                    for (const auto &cc : cn.fn->calls) {
                        for (size_t tgt :
                             graph.resolve(cc.callee)) {
                            if (!visited.insert(tgt).second)
                                continue;
                            parent[tgt] = {cur, cc.line, cc.col};
                            queue.push_back({tgt, depth + 1});
                        }
                    }
                }
            }
        }
    }
}

/** The wipe-coverage pass. */
class WipePass
{
  public:
    WipePass(const std::vector<FileSummary> &summaries,
             const CallGraph &graph)
        : summaries(summaries), graph(graph)
    {
    }

    void
    report(std::vector<Finding> &out) const
    {
        for (const auto &fs : summaries) {
            for (const auto &sd : fs.structs) {
                if (typeIsSelfWiping(sd.name))
                    continue;
                std::vector<const Param *> unwiped;
                for (const auto &m : sd.members) {
                    // A member literally named `key` is key bytes
                    // far more often than a lookup key, so bare
                    // `key`/`keys` stay in scope here even though
                    // the taint pass demotes them.
                    const std::string &mn = m.name;
                    if (!looksKeyMaterial(mn) && mn != "key" &&
                        mn != "keys")
                        continue;
                    if (typeIsSelfWiping(m.type) ||
                        typeIsSecret(m.type))
                        continue; // the member wipes itself
                    if (typeOwnsBytes(m.type))
                        unwiped.push_back(&m);
                }
                if (unwiped.empty())
                    continue;
                if (sd.dtor_wipes || dtorWipes(sd.name))
                    continue;
                Finding f;
                f.rule = "wipe-coverage";
                f.file = fs.path;
                f.line = sd.line;
                f.col = sd.col;
                std::string names;
                for (const Param *m : unwiped) {
                    if (!names.empty())
                        names += ", ";
                    names += m->name;
                }
                f.message =
                    "struct " + sd.name +
                    " owns key-material member(s) " + names +
                    " but has no destructor that secureWipe()s "
                    "them";
                for (const Param *m : unwiped)
                    f.flow.push_back(
                        {fs.path, m->line ? m->line : sd.line, 1,
                         "key-material member '" + m->name + "' (" +
                             m->type + ") declared here"});
                out.push_back(std::move(f));
            }
        }
    }

  private:
    const std::vector<FileSummary> &summaries;
    const CallGraph &graph;

    /**
     * Whether any `~Name` definition in the project (e.g. an
     * out-of-line dtor in the .cc) reaches secureWipe()/wipe()
     * within a few calls.
     */
    bool
    dtorWipes(const std::string &name) const
    {
        std::set<size_t> visited;
        std::vector<std::pair<size_t, int>> queue;
        for (size_t id : graph.resolve("~" + name))
            if (visited.insert(id).second)
                queue.push_back({id, 0});
        for (size_t qi = 0; qi < queue.size(); ++qi) {
            auto [cur, depth] = queue[qi];
            const FunctionDef &fn = *graph.nodes()[cur].fn;
            for (const auto &c : fn.calls) {
                if (c.callee == "secureWipe" || c.callee == "wipe")
                    return true;
                if (depth >= 3)
                    continue;
                for (size_t tgt : graph.resolve(c.callee))
                    if (visited.insert(tgt).second)
                        queue.push_back({tgt, depth + 1});
            }
        }
        return false;
    }
};

} // anonymous namespace

std::vector<Finding>
analyzeProject(const std::vector<FileSummary> &summaries)
{
    CallGraph graph(summaries);
    std::vector<Finding> out;
    TaintPass(summaries, graph).report(out);
    reportDeterminism(graph, out);
    WipePass(summaries, graph).report(out);
    return out;
}

} // namespace coldboot::lint
