/**
 * @file
 * Perf-regression gate over two coldboot-bench BENCH.json files.
 *
 * Usage:
 *   bench_compare [options] BASELINE.json CANDIDATE.json
 *   bench_compare --self BENCH.json
 *
 * For every benchmark present in the baseline the candidate's median
 * wall time is compared against the baseline median. A benchmark
 * regresses when BOTH hold:
 *
 *   cand_median > base_median * (1 + threshold)          and
 *   cand_median - base_median >
 *       max(min_ns, mad_factor * base_mad)
 *
 * i.e. the slowdown must be large relatively AND clear the noise
 * floor measured by the baseline's own median-absolute-deviation.
 * A benchmark missing from the candidate is a failure (a silently
 * dropped bench must not pass the gate). Schema versions must match.
 *
 * Exit status: 0 = no regressions, 1 = regression or missing bench,
 * 2 = usage or file/schema error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.hh"

using coldboot::obs::json::Value;

namespace
{

struct Options
{
    double threshold = 0.30;  // relative slowdown gate
    double mad_factor = 3.0;  // noise floor in baseline MADs
    double min_ns = 100e3;    // absolute noise floor, ns
    bool self = false;
    std::string baseline_path;
    std::string candidate_path;
};

void
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: bench_compare [options] BASELINE.json CANDIDATE.json\n"
        "       bench_compare [options] --self BENCH.json\n"
        "\n"
        "options:\n"
        "  --threshold FRAC   relative slowdown gate "
        "(default 0.30 = 30%%)\n"
        "  --mad-factor X     noise floor in baseline MADs "
        "(default 3)\n"
        "  --min-ns NS        absolute noise floor in ns "
        "(default 100000)\n"
        "  --self             compare one file against itself "
        "(sanity gate)\n");
}

struct BenchRow
{
    std::string name;
    double median = 0.0;
    double mad = 0.0;
};

/** Extract {name, wall_ns.median, wall_ns.mad} rows or die. */
std::vector<BenchRow>
loadRows(const Value &doc, const std::string &path)
{
    std::vector<BenchRow> rows;
    const Value *benches = doc.find("benches");
    if (!benches || !benches->isArray()) {
        std::fprintf(stderr,
                     "bench_compare: %s: no 'benches' array\n",
                     path.c_str());
        std::exit(2);
    }
    for (const auto &b : benches->array) {
        const Value *name = b.find("name");
        const Value *wall = b.find("wall_ns");
        const Value *median = wall ? wall->find("median") : nullptr;
        const Value *mad = wall ? wall->find("mad") : nullptr;
        if (!name || !name->isString() || !median ||
            !median->isNumber()) {
            std::fprintf(stderr,
                         "bench_compare: %s: bench entry missing "
                         "name or wall_ns.median\n",
                         path.c_str());
            std::exit(2);
        }
        BenchRow row;
        row.name = name->str;
        row.median = median->number;
        row.mad = mad && mad->isNumber() ? mad->number : 0.0;
        rows.push_back(row);
    }
    return rows;
}

Value
loadDoc(const std::string &path)
{
    auto doc = coldboot::obs::json::parseFile(path);
    if (!doc) {
        std::fprintf(stderr,
                     "bench_compare: cannot read or parse %s\n",
                     path.c_str());
        std::exit(2);
    }
    return *doc;
}

double
schemaVersion(const Value &doc, const std::string &path)
{
    const Value *v = doc.find("schema_version");
    if (!v || !v->isNumber()) {
        std::fprintf(stderr,
                     "bench_compare: %s: missing schema_version\n",
                     path.c_str());
        std::exit(2);
    }
    return v->number;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto needValue = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "bench_compare: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threshold") {
            opt.threshold = std::strtod(needValue("--threshold"),
                                        nullptr);
        } else if (arg == "--mad-factor") {
            opt.mad_factor = std::strtod(needValue("--mad-factor"),
                                         nullptr);
        } else if (arg == "--min-ns") {
            opt.min_ns = std::strtod(needValue("--min-ns"), nullptr);
        } else if (arg == "--self") {
            opt.self = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "bench_compare: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            positional.push_back(arg);
        }
    }
    if (opt.self ? positional.size() != 1 : positional.size() != 2) {
        usage(stderr);
        return 2;
    }
    opt.baseline_path = positional[0];
    opt.candidate_path = opt.self ? positional[0] : positional[1];

    Value base_doc = loadDoc(opt.baseline_path);
    Value cand_doc = loadDoc(opt.candidate_path);
    double base_schema = schemaVersion(base_doc, opt.baseline_path);
    double cand_schema = schemaVersion(cand_doc, opt.candidate_path);
    if (base_schema != cand_schema) {
        std::fprintf(stderr,
                     "bench_compare: schema mismatch: %s is v%g, "
                     "%s is v%g\n",
                     opt.baseline_path.c_str(), base_schema,
                     opt.candidate_path.c_str(), cand_schema);
        return 2;
    }

    auto base_rows = loadRows(base_doc, opt.baseline_path);
    auto cand_rows = loadRows(cand_doc, opt.candidate_path);

    std::printf("%-24s %14s %14s %9s  %s\n", "bench",
                "base median", "cand median", "delta", "verdict");
    int regressions = 0;
    for (const auto &base : base_rows) {
        const BenchRow *cand = nullptr;
        for (const auto &row : cand_rows)
            if (row.name == base.name)
                cand = &row;
        if (!cand) {
            std::printf("%-24s %14.0f %14s %9s  MISSING\n",
                        base.name.c_str(), base.median, "-", "-");
            ++regressions;
            continue;
        }
        double delta = cand->median - base.median;
        double rel = base.median > 0 ? delta / base.median : 0.0;
        double noise_floor =
            std::max(opt.min_ns, opt.mad_factor * base.mad);
        bool regressed = cand->median >
                             base.median * (1.0 + opt.threshold) &&
                         delta > noise_floor;
        regressions += regressed;
        std::printf("%-24s %14.0f %14.0f %+8.1f%%  %s\n",
                    base.name.c_str(), base.median, cand->median,
                    100.0 * rel, regressed ? "REGRESSED" : "ok");
    }

    if (regressions) {
        std::printf("\n%d regression%s (threshold %.0f%%, noise "
                    "floor max(%.0f ns, %.1f MAD))\n",
                    regressions, regressions == 1 ? "" : "s",
                    100.0 * opt.threshold, opt.min_ns,
                    opt.mad_factor);
        return 1;
    }
    std::printf("\nno regressions (threshold %.0f%%, noise floor "
                "max(%.0f ns, %.1f MAD))\n",
                100.0 * opt.threshold, opt.min_ns, opt.mad_factor);
    return 0;
}
