# Empty compiler generated dependencies file for scrambler_analysis.
# This may be replaced when dependencies are built.
