# Empty dependencies file for scrambler_analysis.
# This may be replaced when dependencies are built.
