file(REMOVE_RECURSE
  "CMakeFiles/scrambler_analysis.dir/scrambler_analysis.cpp.o"
  "CMakeFiles/scrambler_analysis.dir/scrambler_analysis.cpp.o.d"
  "scrambler_analysis"
  "scrambler_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrambler_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
