# Empty dependencies file for encrypted_memory.
# This may be replaced when dependencies are built.
