file(REMOVE_RECURSE
  "CMakeFiles/encrypted_memory.dir/encrypted_memory.cpp.o"
  "CMakeFiles/encrypted_memory.dir/encrypted_memory.cpp.o.d"
  "encrypted_memory"
  "encrypted_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
