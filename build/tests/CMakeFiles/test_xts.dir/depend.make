# Empty dependencies file for test_xts.
# This may be replaced when dependencies are built.
