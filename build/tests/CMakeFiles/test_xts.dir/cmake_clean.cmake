file(REMOVE_RECURSE
  "CMakeFiles/test_xts.dir/test_xts.cc.o"
  "CMakeFiles/test_xts.dir/test_xts.cc.o.d"
  "test_xts"
  "test_xts.pdb"
  "test_xts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
