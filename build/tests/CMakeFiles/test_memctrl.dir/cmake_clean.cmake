file(REMOVE_RECURSE
  "CMakeFiles/test_memctrl.dir/test_memctrl.cc.o"
  "CMakeFiles/test_memctrl.dir/test_memctrl.cc.o.d"
  "test_memctrl"
  "test_memctrl.pdb"
  "test_memctrl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
