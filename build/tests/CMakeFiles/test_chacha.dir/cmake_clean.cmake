file(REMOVE_RECURSE
  "CMakeFiles/test_chacha.dir/test_chacha.cc.o"
  "CMakeFiles/test_chacha.dir/test_chacha.cc.o.d"
  "test_chacha"
  "test_chacha.pdb"
  "test_chacha[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chacha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
