# Empty compiler generated dependencies file for test_chacha.
# This may be replaced when dependencies are built.
