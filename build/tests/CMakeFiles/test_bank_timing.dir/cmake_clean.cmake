file(REMOVE_RECURSE
  "CMakeFiles/test_bank_timing.dir/test_bank_timing.cc.o"
  "CMakeFiles/test_bank_timing.dir/test_bank_timing.cc.o.d"
  "test_bank_timing"
  "test_bank_timing.pdb"
  "test_bank_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bank_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
