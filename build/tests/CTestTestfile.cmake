# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_aes[1]_include.cmake")
include("/root/repo/build/tests/test_chacha[1]_include.cmake")
include("/root/repo/build/tests/test_sha256[1]_include.cmake")
include("/root/repo/build/tests/test_xts[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_memctrl[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_volume[1]_include.cmake")
include("/root/repo/build/tests/test_litmus[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_pipelined[1]_include.cmake")
include("/root/repo/build/tests/test_bank_timing[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
