file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_scramblers.dir/bench_table1_scramblers.cc.o"
  "CMakeFiles/bench_table1_scramblers.dir/bench_table1_scramblers.cc.o.d"
  "bench_table1_scramblers"
  "bench_table1_scramblers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_scramblers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
