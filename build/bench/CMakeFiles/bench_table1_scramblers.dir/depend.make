# Empty dependencies file for bench_table1_scramblers.
# This may be replaced when dependencies are built.
