file(REMOVE_RECURSE
  "CMakeFiles/bench_key_mining.dir/bench_key_mining.cc.o"
  "CMakeFiles/bench_key_mining.dir/bench_key_mining.cc.o.d"
  "bench_key_mining"
  "bench_key_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_key_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
