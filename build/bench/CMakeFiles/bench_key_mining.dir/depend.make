# Empty dependencies file for bench_key_mining.
# This may be replaced when dependencies are built.
