# Empty dependencies file for bench_fig3_visual.
# This may be replaced when dependencies are built.
