file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_visual.dir/bench_fig3_visual.cc.o"
  "CMakeFiles/bench_fig3_visual.dir/bench_fig3_visual.cc.o.d"
  "bench_fig3_visual"
  "bench_fig3_visual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_visual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
