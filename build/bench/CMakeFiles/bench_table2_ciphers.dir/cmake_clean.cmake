file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ciphers.dir/bench_table2_ciphers.cc.o"
  "CMakeFiles/bench_table2_ciphers.dir/bench_table2_ciphers.cc.o.d"
  "bench_table2_ciphers"
  "bench_table2_ciphers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ciphers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
