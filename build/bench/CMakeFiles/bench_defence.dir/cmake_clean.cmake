file(REMOVE_RECURSE
  "CMakeFiles/bench_defence.dir/bench_defence.cc.o"
  "CMakeFiles/bench_defence.dir/bench_defence.cc.o.d"
  "bench_defence"
  "bench_defence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
