# Empty dependencies file for bench_defence.
# This may be replaced when dependencies are built.
