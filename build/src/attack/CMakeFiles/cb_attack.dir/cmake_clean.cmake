file(REMOVE_RECURSE
  "CMakeFiles/cb_attack.dir/aes_search.cc.o"
  "CMakeFiles/cb_attack.dir/aes_search.cc.o.d"
  "CMakeFiles/cb_attack.dir/attack_pipeline.cc.o"
  "CMakeFiles/cb_attack.dir/attack_pipeline.cc.o.d"
  "CMakeFiles/cb_attack.dir/ddr3_attack.cc.o"
  "CMakeFiles/cb_attack.dir/ddr3_attack.cc.o.d"
  "CMakeFiles/cb_attack.dir/halderman_search.cc.o"
  "CMakeFiles/cb_attack.dir/halderman_search.cc.o.d"
  "CMakeFiles/cb_attack.dir/key_miner.cc.o"
  "CMakeFiles/cb_attack.dir/key_miner.cc.o.d"
  "CMakeFiles/cb_attack.dir/litmus.cc.o"
  "CMakeFiles/cb_attack.dir/litmus.cc.o.d"
  "libcb_attack.a"
  "libcb_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
