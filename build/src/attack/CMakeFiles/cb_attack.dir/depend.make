# Empty dependencies file for cb_attack.
# This may be replaced when dependencies are built.
