
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/aes_search.cc" "src/attack/CMakeFiles/cb_attack.dir/aes_search.cc.o" "gcc" "src/attack/CMakeFiles/cb_attack.dir/aes_search.cc.o.d"
  "/root/repo/src/attack/attack_pipeline.cc" "src/attack/CMakeFiles/cb_attack.dir/attack_pipeline.cc.o" "gcc" "src/attack/CMakeFiles/cb_attack.dir/attack_pipeline.cc.o.d"
  "/root/repo/src/attack/ddr3_attack.cc" "src/attack/CMakeFiles/cb_attack.dir/ddr3_attack.cc.o" "gcc" "src/attack/CMakeFiles/cb_attack.dir/ddr3_attack.cc.o.d"
  "/root/repo/src/attack/halderman_search.cc" "src/attack/CMakeFiles/cb_attack.dir/halderman_search.cc.o" "gcc" "src/attack/CMakeFiles/cb_attack.dir/halderman_search.cc.o.d"
  "/root/repo/src/attack/key_miner.cc" "src/attack/CMakeFiles/cb_attack.dir/key_miner.cc.o" "gcc" "src/attack/CMakeFiles/cb_attack.dir/key_miner.cc.o.d"
  "/root/repo/src/attack/litmus.cc" "src/attack/CMakeFiles/cb_attack.dir/litmus.cc.o" "gcc" "src/attack/CMakeFiles/cb_attack.dir/litmus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cb_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/memctrl/CMakeFiles/cb_memctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cb_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
