file(REMOVE_RECURSE
  "libcb_attack.a"
)
