file(REMOVE_RECURSE
  "libcb_memctrl.a"
)
