file(REMOVE_RECURSE
  "CMakeFiles/cb_memctrl.dir/address_map.cc.o"
  "CMakeFiles/cb_memctrl.dir/address_map.cc.o.d"
  "CMakeFiles/cb_memctrl.dir/lfsr.cc.o"
  "CMakeFiles/cb_memctrl.dir/lfsr.cc.o.d"
  "CMakeFiles/cb_memctrl.dir/memory_controller.cc.o"
  "CMakeFiles/cb_memctrl.dir/memory_controller.cc.o.d"
  "CMakeFiles/cb_memctrl.dir/scrambler.cc.o"
  "CMakeFiles/cb_memctrl.dir/scrambler.cc.o.d"
  "libcb_memctrl.a"
  "libcb_memctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_memctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
