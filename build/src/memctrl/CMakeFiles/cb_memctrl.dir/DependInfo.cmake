
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memctrl/address_map.cc" "src/memctrl/CMakeFiles/cb_memctrl.dir/address_map.cc.o" "gcc" "src/memctrl/CMakeFiles/cb_memctrl.dir/address_map.cc.o.d"
  "/root/repo/src/memctrl/lfsr.cc" "src/memctrl/CMakeFiles/cb_memctrl.dir/lfsr.cc.o" "gcc" "src/memctrl/CMakeFiles/cb_memctrl.dir/lfsr.cc.o.d"
  "/root/repo/src/memctrl/memory_controller.cc" "src/memctrl/CMakeFiles/cb_memctrl.dir/memory_controller.cc.o" "gcc" "src/memctrl/CMakeFiles/cb_memctrl.dir/memory_controller.cc.o.d"
  "/root/repo/src/memctrl/scrambler.cc" "src/memctrl/CMakeFiles/cb_memctrl.dir/scrambler.cc.o" "gcc" "src/memctrl/CMakeFiles/cb_memctrl.dir/scrambler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cb_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
