# Empty compiler generated dependencies file for cb_memctrl.
# This may be replaced when dependencies are built.
