file(REMOVE_RECURSE
  "CMakeFiles/cb_common.dir/bits.cc.o"
  "CMakeFiles/cb_common.dir/bits.cc.o.d"
  "CMakeFiles/cb_common.dir/hex.cc.o"
  "CMakeFiles/cb_common.dir/hex.cc.o.d"
  "CMakeFiles/cb_common.dir/logging.cc.o"
  "CMakeFiles/cb_common.dir/logging.cc.o.d"
  "CMakeFiles/cb_common.dir/rng.cc.o"
  "CMakeFiles/cb_common.dir/rng.cc.o.d"
  "libcb_common.a"
  "libcb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
