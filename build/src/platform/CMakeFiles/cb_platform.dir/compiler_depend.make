# Empty compiler generated dependencies file for cb_platform.
# This may be replaced when dependencies are built.
