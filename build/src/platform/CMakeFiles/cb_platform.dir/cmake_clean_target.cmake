file(REMOVE_RECURSE
  "libcb_platform.a"
)
