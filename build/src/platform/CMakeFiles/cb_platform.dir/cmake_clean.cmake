file(REMOVE_RECURSE
  "CMakeFiles/cb_platform.dir/coldboot.cc.o"
  "CMakeFiles/cb_platform.dir/coldboot.cc.o.d"
  "CMakeFiles/cb_platform.dir/machine.cc.o"
  "CMakeFiles/cb_platform.dir/machine.cc.o.d"
  "CMakeFiles/cb_platform.dir/memory_image.cc.o"
  "CMakeFiles/cb_platform.dir/memory_image.cc.o.d"
  "CMakeFiles/cb_platform.dir/workload.cc.o"
  "CMakeFiles/cb_platform.dir/workload.cc.o.d"
  "libcb_platform.a"
  "libcb_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
