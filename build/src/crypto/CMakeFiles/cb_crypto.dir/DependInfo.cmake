
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/cb_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/aes_ttable.cc" "src/crypto/CMakeFiles/cb_crypto.dir/aes_ttable.cc.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/aes_ttable.cc.o.d"
  "/root/repo/src/crypto/chacha.cc" "src/crypto/CMakeFiles/cb_crypto.dir/chacha.cc.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/chacha.cc.o.d"
  "/root/repo/src/crypto/ctr.cc" "src/crypto/CMakeFiles/cb_crypto.dir/ctr.cc.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/ctr.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/cb_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/sha256.cc.o.d"
  "/root/repo/src/crypto/xts.cc" "src/crypto/CMakeFiles/cb_crypto.dir/xts.cc.o" "gcc" "src/crypto/CMakeFiles/cb_crypto.dir/xts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
