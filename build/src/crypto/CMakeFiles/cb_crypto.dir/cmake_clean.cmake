file(REMOVE_RECURSE
  "CMakeFiles/cb_crypto.dir/aes.cc.o"
  "CMakeFiles/cb_crypto.dir/aes.cc.o.d"
  "CMakeFiles/cb_crypto.dir/aes_ttable.cc.o"
  "CMakeFiles/cb_crypto.dir/aes_ttable.cc.o.d"
  "CMakeFiles/cb_crypto.dir/chacha.cc.o"
  "CMakeFiles/cb_crypto.dir/chacha.cc.o.d"
  "CMakeFiles/cb_crypto.dir/ctr.cc.o"
  "CMakeFiles/cb_crypto.dir/ctr.cc.o.d"
  "CMakeFiles/cb_crypto.dir/sha256.cc.o"
  "CMakeFiles/cb_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/cb_crypto.dir/xts.cc.o"
  "CMakeFiles/cb_crypto.dir/xts.cc.o.d"
  "libcb_crypto.a"
  "libcb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
