file(REMOVE_RECURSE
  "CMakeFiles/cb_engine.dir/cipher_engine.cc.o"
  "CMakeFiles/cb_engine.dir/cipher_engine.cc.o.d"
  "CMakeFiles/cb_engine.dir/encrypted_controller.cc.o"
  "CMakeFiles/cb_engine.dir/encrypted_controller.cc.o.d"
  "CMakeFiles/cb_engine.dir/latency_sim.cc.o"
  "CMakeFiles/cb_engine.dir/latency_sim.cc.o.d"
  "CMakeFiles/cb_engine.dir/pipelined_engines.cc.o"
  "CMakeFiles/cb_engine.dir/pipelined_engines.cc.o.d"
  "CMakeFiles/cb_engine.dir/power_model.cc.o"
  "CMakeFiles/cb_engine.dir/power_model.cc.o.d"
  "libcb_engine.a"
  "libcb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
