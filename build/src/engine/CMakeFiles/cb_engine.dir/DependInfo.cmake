
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cipher_engine.cc" "src/engine/CMakeFiles/cb_engine.dir/cipher_engine.cc.o" "gcc" "src/engine/CMakeFiles/cb_engine.dir/cipher_engine.cc.o.d"
  "/root/repo/src/engine/encrypted_controller.cc" "src/engine/CMakeFiles/cb_engine.dir/encrypted_controller.cc.o" "gcc" "src/engine/CMakeFiles/cb_engine.dir/encrypted_controller.cc.o.d"
  "/root/repo/src/engine/latency_sim.cc" "src/engine/CMakeFiles/cb_engine.dir/latency_sim.cc.o" "gcc" "src/engine/CMakeFiles/cb_engine.dir/latency_sim.cc.o.d"
  "/root/repo/src/engine/pipelined_engines.cc" "src/engine/CMakeFiles/cb_engine.dir/pipelined_engines.cc.o" "gcc" "src/engine/CMakeFiles/cb_engine.dir/pipelined_engines.cc.o.d"
  "/root/repo/src/engine/power_model.cc" "src/engine/CMakeFiles/cb_engine.dir/power_model.cc.o" "gcc" "src/engine/CMakeFiles/cb_engine.dir/power_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cb_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/memctrl/CMakeFiles/cb_memctrl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
