file(REMOVE_RECURSE
  "CMakeFiles/cb_volume.dir/veracrypt_volume.cc.o"
  "CMakeFiles/cb_volume.dir/veracrypt_volume.cc.o.d"
  "libcb_volume.a"
  "libcb_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
