file(REMOVE_RECURSE
  "libcb_volume.a"
)
