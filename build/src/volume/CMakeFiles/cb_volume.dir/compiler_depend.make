# Empty compiler generated dependencies file for cb_volume.
# This may be replaced when dependencies are built.
