
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/volume/veracrypt_volume.cc" "src/volume/CMakeFiles/cb_volume.dir/veracrypt_volume.cc.o" "gcc" "src/volume/CMakeFiles/cb_volume.dir/veracrypt_volume.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cb_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/memctrl/CMakeFiles/cb_memctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/cb_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
