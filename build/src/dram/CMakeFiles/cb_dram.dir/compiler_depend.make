# Empty compiler generated dependencies file for cb_dram.
# This may be replaced when dependencies are built.
