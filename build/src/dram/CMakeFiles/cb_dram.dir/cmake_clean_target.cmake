file(REMOVE_RECURSE
  "libcb_dram.a"
)
