file(REMOVE_RECURSE
  "CMakeFiles/cb_dram.dir/bank_timing.cc.o"
  "CMakeFiles/cb_dram.dir/bank_timing.cc.o.d"
  "CMakeFiles/cb_dram.dir/decay_model.cc.o"
  "CMakeFiles/cb_dram.dir/decay_model.cc.o.d"
  "CMakeFiles/cb_dram.dir/dram_module.cc.o"
  "CMakeFiles/cb_dram.dir/dram_module.cc.o.d"
  "CMakeFiles/cb_dram.dir/timing.cc.o"
  "CMakeFiles/cb_dram.dir/timing.cc.o.d"
  "CMakeFiles/cb_dram.dir/traffic.cc.o"
  "CMakeFiles/cb_dram.dir/traffic.cc.o.d"
  "libcb_dram.a"
  "libcb_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cb_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
