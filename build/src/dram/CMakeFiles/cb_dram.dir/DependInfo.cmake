
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/bank_timing.cc" "src/dram/CMakeFiles/cb_dram.dir/bank_timing.cc.o" "gcc" "src/dram/CMakeFiles/cb_dram.dir/bank_timing.cc.o.d"
  "/root/repo/src/dram/decay_model.cc" "src/dram/CMakeFiles/cb_dram.dir/decay_model.cc.o" "gcc" "src/dram/CMakeFiles/cb_dram.dir/decay_model.cc.o.d"
  "/root/repo/src/dram/dram_module.cc" "src/dram/CMakeFiles/cb_dram.dir/dram_module.cc.o" "gcc" "src/dram/CMakeFiles/cb_dram.dir/dram_module.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/dram/CMakeFiles/cb_dram.dir/timing.cc.o" "gcc" "src/dram/CMakeFiles/cb_dram.dir/timing.cc.o.d"
  "/root/repo/src/dram/traffic.cc" "src/dram/CMakeFiles/cb_dram.dir/traffic.cc.o" "gcc" "src/dram/CMakeFiles/cb_dram.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
