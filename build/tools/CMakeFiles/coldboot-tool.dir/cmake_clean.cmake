file(REMOVE_RECURSE
  "CMakeFiles/coldboot-tool.dir/coldboot_tool.cc.o"
  "CMakeFiles/coldboot-tool.dir/coldboot_tool.cc.o.d"
  "coldboot-tool"
  "coldboot-tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldboot-tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
