# Empty compiler generated dependencies file for coldboot-tool.
# This may be replaced when dependencies are built.
